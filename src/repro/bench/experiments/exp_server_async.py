"""Asyncio serving core at scale, and the online defense's teeth.

Two questions, one served system:

* **Scale** — the event-loop core must hold 1000+ concurrent
  connections in one process (the threaded core's ceiling is its worker
  pool) while serving legitimate zipf traffic at full speed.
* **Defense** — with a :class:`~repro.system.defense.DefendedService`
  in the serving path, an attacker *fleet* (independent users, each
  running the full three-step SuRF attack) must lose extraction rate —
  throttle mode by exploding the attack's simulated duration, noise
  mode by drowning the timing side channel — while benign zipf clients
  keep their throughput and never get flagged.

The attack cutoff is learned once on the undefended twin and shared:
the modeled adversary calibrated beforehand, so the defense is measured
against its strongest version.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import List, Optional

from repro.bench.report import ExperimentReport
from repro.common.rng import make_rng
from repro.core import AttackConfig, learn_cutoff, run_attacker_fleet
from repro.core.parallel import FleetOutcome
from repro.filters import SuRFBuilder
from repro.filters.surf import SuffixScheme, SurfVariant
from repro.server.aio import AsyncLoopbackTransport
from repro.server.client import RemoteBackground
from repro.system.defense import DefensePolicy, build_defended_service
from repro.workloads import (
    ATTACKER_USER,
    OWNER_USER,
    DatasetConfig,
    build_environment,
)

KEY_WIDTH = 5
DATASET_SEED = 2
ATTACK_SEED = 0
WAIT_US = 100_000
DEFENSE_MODES = ("off", "throttle", "noise")


def _environment(num_keys: int):
    return build_environment(DatasetConfig(
        num_keys=num_keys, key_width=KEY_WIDTH, seed=DATASET_SEED,
        filter_builder=SuRFBuilder(variant="real", suffix_bits=8)))


class _ZipfPicker:
    """Zipf-ranked choice over the stored keys (plus a few misses)."""

    def __init__(self, keys: List[bytes], seed: int,
                 exponent: float = 1.1, miss_fraction: float = 0.05) -> None:
        self._keys = keys
        self._rng = make_rng(seed, "benign-zipf")
        self._miss_fraction = miss_fraction
        self._width = len(keys[0])
        acc = 0.0
        cumulative = []
        for rank in range(1, len(keys) + 1):
            acc += 1.0 / rank ** exponent
            cumulative.append(acc)
        self._cumulative = [c / acc for c in cumulative]

    def batch(self, size: int) -> List[bytes]:
        out = []
        for _ in range(size):
            if self._rng.random() < self._miss_fraction:
                out.append(self._rng.random_bytes(self._width))
            else:
                rank = bisect.bisect_left(self._cumulative, self._rng.random())
                out.append(self._keys[min(rank, len(self._keys) - 1)])
        return out


def _benign_load(transport: AsyncLoopbackTransport, keys: List[bytes],
                 clients: int, total_requests: int,
                 batch: int = 32) -> dict:
    """Concurrent legitimate traffic: zipf reads as the data owner."""
    per_client = max(1, total_requests // clients)
    ok_counts = [0] * clients
    errors: List[BaseException] = []

    def run_client(index: int) -> None:
        picker = _ZipfPicker(keys, seed=1000 + index)
        client = transport.connect()
        try:
            sent = 0
            while sent < per_client:
                size = min(batch, per_client - sent)
                responses = client.get_many(OWNER_USER, picker.batch(size))
                ok_counts[index] += sum(
                    1 for r in responses if r.status.name == "OK")
                sent += size
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)
        finally:
            client.close()

    started = time.perf_counter()
    threads = [threading.Thread(target=run_client, args=(i,), daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    wall_s = time.perf_counter() - started
    requests = per_client * clients
    return {
        "benign_requests": requests,
        "benign_ok": sum(ok_counts),
        "benign_wall_s": wall_s,
        "benign_rps": requests / wall_s if wall_s > 0 else 0.0,
    }


def _scale_phase(num_keys: int, connections: int, benign_clients: int,
                 benign_requests: int) -> dict:
    """Hold ``connections`` concurrent clients, serve zipf through them."""
    env = _environment(num_keys)
    with AsyncLoopbackTransport(env.service,
                                background=env.background) as transport:
        held = [transport.connect() for _ in range(connections)]
        pings_ok = 0
        for client in held:
            if client.ping(b"scale") == b"scale":
                pings_ok += 1
        benign = _benign_load(transport, env.keys, benign_clients,
                              benign_requests)
        peak = transport.server.peak_connections
        served = transport.server.connections_served
        for client in held:
            client.close()
    return dict(benign,
                connections_held=connections,
                pings_ok=pings_ok,
                peak_connections=peak,
                connections_served=served)


def _fleet_keys(fleet: FleetOutcome, key_set) -> set:
    keys = set()
    for member in fleet.members:
        keys.update(e.key for e in member.result.extracted)
    return keys & key_set


def _defense_phase(mode: str, num_keys: int, candidates: int,
                   attackers: int, benign_clients: int,
                   benign_requests: int, cutoff_us: float) -> dict:
    """One mode: attacker fleet first, then benign traffic under the
    armed defense (flags are sticky, so collateral is measured at the
    defense's most aggressive state)."""
    env = _environment(num_keys)
    service = env.service
    if mode != "off":
        service = build_defended_service(
            env.service, policy=DefensePolicy(mode=mode, check_every=64))
    scheme = SuffixScheme(SurfVariant.REAL, 8)
    config = AttackConfig(key_width=KEY_WIDTH, num_candidates=candidates)
    with AsyncLoopbackTransport(service,
                                background=env.background) as transport:
        control = transport.connect()
        before = control.stats()
        fleet = run_attacker_fleet(
            transport.dial, attackers, KEY_WIDTH, scheme,
            cutoff_us=cutoff_us, config=config, seed=ATTACK_SEED,
            rounds=4, wait_us=WAIT_US, chunk_size=256, batch_limit=64)
        after_attack = control.stats()
        benign = _benign_load(transport, env.keys, benign_clients,
                              benign_requests)
        after_benign = control.stats()
        control.close()

    extracted = _fleet_keys(fleet, env.key_set)
    attack_sim_s = (after_attack.sim_now_us - before.sim_now_us) / 1e6
    queries = fleet.total_queries
    return dict(
        benign,
        mode=mode,
        keys_extracted=len(extracted),
        attacker_queries=queries,
        attack_sim_s=attack_sim_s,
        keys_per_sim_min=(len(extracted) / (attack_sim_s / 60)
                          if attack_sim_s > 0 else 0.0),
        keys_per_10k_queries=(len(extracted) * 10_000 / queries
                              if queries else 0.0),
        flagged_users=after_attack.flagged_users,
        throttle_escalations=after_attack.throttle_escalations,
        noise_injections=after_benign.noise_injections,
        attacker_stalled=after_attack.stalled_requests,
        benign_flagged_delta=(after_benign.flagged_users
                              - after_attack.flagged_users),
        benign_stall_delta=(after_benign.stalled_requests
                            - after_attack.stalled_requests),
        fleet_wall_s=fleet.wall_seconds,
    )


def _learn_shared_cutoff(num_keys: int, samples: int) -> float:
    """Calibrate on an undefended twin: the attacker's best-case cutoff."""
    env = _environment(num_keys)
    with AsyncLoopbackTransport(env.service,
                                background=env.background) as transport:
        client = transport.connect()
        learning = learn_cutoff(client, ATTACKER_USER, KEY_WIDTH,
                                num_samples=samples, seed=ATTACK_SEED,
                                background=RemoteBackground(client))
        client.close()
    return learning.cutoff_us


def run(num_keys: int = 8_000, candidates: int = 12_000,
        learn_samples: int = 6_000, scale_connections: int = 1_100,
        scale_benign_requests: int = 4_000, benign_clients: int = 8,
        defense_benign_requests: int = 2_000,
        attackers: int = 2) -> ExperimentReport:
    """Scale phase, then the three defense modes against the same fleet."""
    scale = _scale_phase(num_keys, scale_connections, benign_clients,
                         scale_benign_requests)
    cutoff_us = _learn_shared_cutoff(num_keys, learn_samples)
    rows = [_defense_phase(mode, num_keys, candidates, attackers,
                           benign_clients, defense_benign_requests,
                           cutoff_us)
            for mode in DEFENSE_MODES]
    by_mode = {row["mode"]: row for row in rows}
    off = by_mode["off"]

    def rate_ratio(mode: str, metric: str) -> float:
        return (by_mode[mode][metric] / off[metric]) if off[metric] else 0.0

    return ExperimentReport(
        experiment="BENCH_server_async",
        title="Asyncio serving core at scale + online siphoning defense",
        paper_claim=("Section 11: a deployment can detect the attack's "
                     "request signature and respond — rate limiting slows "
                     "the attack down; perturbing response times destroys "
                     "the timing channel outright."),
        scale_note=(f"{num_keys:,} keys of {KEY_WIDTH} bytes served by the "
                    f"asyncio core; {scale_connections:,} held connections "
                    f"in the scale phase; {attackers} concurrent attackers "
                    f"x {candidates:,} candidates per defense mode; shared "
                    f"pre-learned cutoff {cutoff_us:.1f} us."),
        rows=[dict(phase="scale", **scale)] + rows,
        summary={
            "peak_connections": scale["peak_connections"],
            "scale_benign_rps": round(scale["benign_rps"], 1),
            "cutoff_us": cutoff_us,
            "off_keys_extracted": off["keys_extracted"],
            "throttle_time_rate_ratio": rate_ratio("throttle",
                                                   "keys_per_sim_min"),
            "noise_query_rate_ratio": rate_ratio("noise",
                                                 "keys_per_10k_queries"),
            "throttle_benign_rps_ratio": (
                by_mode["throttle"]["benign_rps"] / off["benign_rps"]
                if off["benign_rps"] else 0.0),
            "noise_benign_rps_ratio": (
                by_mode["noise"]["benign_rps"] / off["benign_rps"]
                if off["benign_rps"] else 0.0),
            "benign_flagged": max(r["benign_flagged_delta"] for r in rows),
        },
    )
