"""Figure 2 — response-time distribution broken down by key type.

The analyst's validation of the cutoff: the same random-key queries as
Table 1, but each labelled with the ground-truth filter decision (negative
vs false positive), available here from the engine's debug counters just
as the paper used RocksDB internals.  The paper finds the vast majority of
false positives at 25-35 us and >50% of all FPs above the 25 us cutoff,
making the shape-derived cutoff a good classifier.
"""

from __future__ import annotations

import functools
from typing import List

from repro.analysis.distribution import breakdown_by_type, classifier_quality
from repro.bench.harness import surf_environment
from repro.bench.report import ExperimentReport
from repro.common.histogram import derive_cutoff
from repro.common.rng import make_rng
from repro.core.learning import BUCKET_WIDTH_US, OVERFLOW_AT_US
from repro.workloads.datasets import ATTACKER_USER

PAPER_CLAIM = ("Most false-positive queries respond in 25-35us; >50% of all "
               "FPs land above the 25us cutoff, so the shape-derived cutoff "
               "is a good negative/positive distinguisher")
SCALE_NOTE = "Same environment as Table 1; labels from engine debug counters"


@functools.lru_cache(maxsize=4)
def run(num_keys: int = 50_000, samples: int = 30_000,
        seed: int = 0) -> ExperimentReport:
    """Measure, label, and bucket random-key response times."""
    env = surf_environment(num_keys=num_keys, seed=seed)
    rng = make_rng(seed, "fig2")
    times: List[float] = []
    labels: List[bool] = []
    for index in range(samples):
        key = rng.random_bytes(env.config.key_width)
        labels.append(env.db.filters_pass(key))
        _, elapsed = env.service.get_timed(ATTACKER_USER, key)
        times.append(elapsed)
        if (index + 1) % 256 == 0:
            env.background.run_for(env.background.eviction_wait_us())
    cutoff = derive_cutoff(times, BUCKET_WIDTH_US, OVERFLOW_AT_US)
    buckets = breakdown_by_type(times, labels, BUCKET_WIDTH_US, OVERFLOW_AT_US)
    rows = [
        {
            "bucket_us": b.label,
            "negatives": b.negatives,
            "false_positives": b.false_positives,
            "fp_percent_of_bucket": b.fp_percent,
        }
        for b in buckets
    ]
    quality = classifier_quality(times, labels, cutoff)
    total_fps = sum(b.false_positives for b in buckets)
    fps_above = sum(b.false_positives for b in buckets if b.low_us >= cutoff)
    return ExperimentReport(
        experiment="fig2",
        title="Breakdown of query response times by key type",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={
            "cutoff_us": cutoff,
            "fp_fraction_above_cutoff": fps_above / total_fps if total_fps else 0.0,
            "classifier_tpr": quality["true_positive_rate"],
            "classifier_fpr": quality["false_positive_rate"],
        },
    )
