"""Figure 4 — SuRF-Hash vs SuRF-Real.

SuRF-Hash replaces SuRF-Real's key-suffix bits with hash bits: the
identified prefixes get shorter and the FPR lower (fewer FPs found), but
the attacker prunes the suffix search by the public hash, skipping
255/256 of candidates for free.  The paper compensates for the lower FPR
by giving the Hash attack 3x the FindFPK candidates and finds: a peak in
amortized queries/key early (the extra candidates amortized over few
keys), convergence to a similar per-key cost (12M vs 10M), and *more*
keys extracted under SuRF-Hash (2490 vs 2171).
"""

from __future__ import annotations

import functools

from repro.bench.harness import (
    correctness,
    run_idealized_attack,
    surf_environment,
    surf_strategy,
)
from repro.bench.report import ExperimentReport, downsample

PAPER_CLAIM = ("Idealized attacks, 8-bit suffixes: SuRF-Hash attack (3x "
               "candidates) peaks early in queries/key, converges to 12M vs "
               "10M for SuRF-Real, and extracts more keys (2490 vs 2171)")
SCALE_NOTE = ("50k 32-bit keys; Real 30k candidates, Hash 90k (3x); "
              "hash pruning skips 255/256 of extension candidates")


@functools.lru_cache(maxsize=4)
def run(num_keys: int = 50_000, real_candidates: int = 30_000,
        seed: int = 0) -> ExperimentReport:
    """Compare idealized attacks on Real-8 vs Hash-8 over the same keys."""
    rows = []
    series = {}
    results = {}
    for variant, candidates in (("real", real_candidates),
                                ("hash", 3 * real_candidates)):
        env = surf_environment(num_keys=num_keys, key_width=4,
                               variant=variant, suffix_bits=8, seed=seed)
        strategy = surf_strategy(env, variant=variant, suffix_bits=8,
                                 mode="truncate", seed=seed + 5)
        attack = run_idealized_attack(env, strategy,
                                      num_candidates=candidates)
        ok, total = correctness(env, attack.result)
        results[variant] = attack.result
        rows.append({
            "variant": f"surf-{variant}8",
            "candidates": candidates,
            "fps_found": len(attack.result.prefixes_identified),
            "keys_extracted": total,
            "correct": ok,
            "queries_per_key": attack.result.queries_per_key(),
        })
        series[f"{variant}(queries,q/key)"] = downsample(
            attack.result.moving_queries_per_key(), 12)
    real_total = results["real"].num_extracted
    hash_total = results["hash"].num_extracted
    return ExperimentReport(
        experiment="fig4",
        title="SuRF-Hash vs SuRF-Real: amortized queries per extracted key",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        series=series,
        summary={
            "hash_extracts_more": hash_total > real_total,
            "hash_over_real_keys": (hash_total / real_total
                                    if real_total else float("inf")),
        },
    )
