"""Extension — the range-query attack the paper anticipates (sections 5, 11).

The paper's attack uses only point queries and leaves range-query attacks
to future work, warning that proposed mitigations (separate point/range
filters; Rosetta) would not survive them.  This experiment runs our
range-descent instantiation and quantifies both warnings:

* against SuRF-Real, the descent *systematically enumerates* stored keys
  in lexicographic order — no lucky false positives needed — at a per-key
  cost comparable to the point attack's;
* against Rosetta, which completely blocks the point attack, the descent
  reads keys out almost for free, because Rosetta resolves ranges at full
  depth.
"""

from __future__ import annotations

import functools

from repro.bench.harness import (
    run_idealized_attack,
    surf_environment,
    surf_strategy,
)
from repro.bench.report import ExperimentReport, downsample
from repro.core.range_attack import (
    IdealizedRangeOracle,
    RangeAttackConfig,
    RangeDescentAttack,
)
from repro.filters.rosetta import RosettaFilterBuilder
from repro.workloads.datasets import ATTACKER_USER, DatasetConfig, build_environment

PAPER_CLAIM = ("(anticipated by sections 5 and 11) Range-query attacks "
               "exist: separate point/range filters and Rosetta do not "
               "block them")
SCALE_NOTE = ("SuRF-Real 100k 40-bit keys, 50-key target; Rosetta 50k 32-bit "
              "keys; point attack shown for comparison")


@functools.lru_cache(maxsize=2)
def run(num_keys: int = 100_000, target_keys: int = 50,
        seed: int = 0) -> ExperimentReport:
    """Range descent vs point attack on SuRF; range descent on Rosetta."""
    rows = []
    series = {}

    # --- SuRF-Real: range descent --------------------------------------
    env = surf_environment(num_keys=num_keys, key_width=5, seed=seed)
    oracle = IdealizedRangeOracle(env.service, ATTACKER_USER)
    descent = RangeDescentAttack(oracle, RangeAttackConfig(
        key_width=5, max_keys=target_keys, seed=seed + 1)).run()
    correct = sum(1 for k in descent.keys if k in env.key_set)
    rows.append({
        "attack": "range descent vs SuRF-Real",
        "keys_extracted": len(descent.keys),
        "correct": correct,
        "queries_per_key": descent.queries_per_key(),
        "systematic": descent.keys == sorted(descent.keys),
    })
    series["surf(queries,keys)"] = downsample(descent.progress, 10)

    # --- SuRF-Real: the paper's point attack, same environment ----------
    point = run_idealized_attack(env, surf_strategy(env, seed=seed + 2),
                                 num_candidates=30_000)
    point_correct = sum(1 for e in point.result.extracted
                        if e.key in env.key_set)
    rows.append({
        "attack": "point attack vs SuRF-Real",
        "keys_extracted": point.result.num_extracted,
        "correct": point_correct,
        "queries_per_key": point.result.queries_per_key(),
        "systematic": False,
    })

    # --- Rosetta: blocked for points, transparent for ranges ------------
    rosetta_env = build_environment(DatasetConfig(
        num_keys=max(num_keys // 2, 1), key_width=4, seed=seed,
        filter_builder=RosettaFilterBuilder(key_bytes=4,
                                            bits_per_key_per_level=8.0)))
    rosetta_oracle = IdealizedRangeOracle(rosetta_env.service, ATTACKER_USER)
    rosetta = RangeDescentAttack(rosetta_oracle, RangeAttackConfig(
        key_width=4, max_keys=target_keys, seed=seed + 3)).run()
    rosetta_correct = sum(1 for k in rosetta.keys
                          if k in rosetta_env.key_set)
    rows.append({
        "attack": "range descent vs Rosetta",
        "keys_extracted": len(rosetta.keys),
        "correct": rosetta_correct,
        "queries_per_key": rosetta.queries_per_key(),
        "systematic": rosetta.keys == sorted(rosetta.keys),
    })
    series["rosetta(queries,keys)"] = downsample(rosetta.progress, 10)

    return ExperimentReport(
        experiment="range-attack",
        title="Range-descent siphoning (anticipated range-query attack)",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        series=series,
        summary={
            "rosetta_defeated_by_ranges": len(rosetta.keys) >= target_keys // 2,
            "rosetta_queries_per_key": rosetta.queries_per_key(),
            "descent_enumerates_smallest_keys": descent.keys
            == sorted(descent.keys),
        },
    )
