"""Figure 7 — SuRF-Real vs SuRF-Base (sensitivity to filter FPR).

The paper's counterintuitive finding: the *better* the filter (lower FPR),
the *more* keys the attack extracts.  SuRF-Real's stored suffix byte both
improves the FPR and hands the attacker one extra identified byte, pushing
many more prefixes past the extension-feasibility threshold: 420 keys
extracted vs 21 for SuRF-Base at similar queries/key.

At reproduction scale the feasibility threshold is one suffix byte
(prefixes >= 32 of 40 bits, the analogue of the paper's >= 40 of 64), and
the dataset is denser (200k keys) so pruned prefixes concentrate at 3
bytes: SuRF-Base identifies mostly 2-3 byte prefixes (discarded), while
SuRF-Real's extra byte makes 4-byte known prefixes common.
"""

from __future__ import annotations

import functools

from repro.bench.harness import (
    correctness,
    run_idealized_attack,
    surf_environment,
    surf_strategy,
)
from repro.bench.report import ExperimentReport, downsample

PAPER_CLAIM = ("Same dataset and candidate set: attack extracts 420 keys "
               "against SuRF-Real vs 21 against SuRF-Base at similar "
               "queries/key — better FPR makes the attack more effective")
SCALE_NOTE = ("200k 40-bit keys, 400k candidates, keep prefixes >= 32 bits "
              "(extension <= 256 queries)")


@functools.lru_cache(maxsize=4)
def run(num_keys: int = 200_000, candidates: int = 400_000,
        seed: int = 0) -> ExperimentReport:
    """Idealized attacks on Base vs Real over the same key set."""
    rows = []
    series = {}
    extracted = {}
    for variant in ("base", "real"):
        env = surf_environment(num_keys=num_keys, key_width=5,
                               variant=variant, suffix_bits=8, seed=seed)
        strategy = surf_strategy(env, variant=variant, suffix_bits=8,
                                 mode="truncate", seed=seed + 9)
        attack = run_idealized_attack(env, strategy,
                                      num_candidates=candidates,
                                      max_extension_queries=256)
        ok, total = correctness(env, attack.result)
        extracted[variant] = total
        rows.append({
            "variant": f"surf-{variant}",
            "fps_found": len(attack.result.prefixes_identified),
            "prefixes_discarded": attack.result.prefixes_discarded,
            "keys_extracted": total,
            "correct": ok,
            "total_queries": attack.result.total_queries,
        })
        series[f"{variant}(queries,keys)"] = downsample(
            attack.result.progress, 12)
    return ExperimentReport(
        experiment="fig7",
        title="SuRF-Real vs SuRF-Base: keys extracted at the same budget",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        series=series,
        summary={
            "real_extracts_more": extracted["real"] > extracted["base"],
            "real_keys": extracted["real"],
            "base_keys": extracted["base"],
        },
    )
