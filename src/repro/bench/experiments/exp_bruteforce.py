"""Section 10.2.2 — brute-force comparison.

The paper let a random-guessing attack run for 10x the prefix-siphoning
experiment's duration and it failed to find a single key.  Here the brute
force gets a multiple of the siphoning attack's *query* budget and the
closed-form expectation shows why it is hopeless: the expected guesses per
hit is |keyspace| / |dataset|, orders of magnitude above the attack's
queries/key.
"""

from __future__ import annotations

import functools

from repro.bench.harness import (
    run_idealized_attack,
    surf_environment,
    surf_strategy,
)
from repro.bench.report import ExperimentReport
from repro.core.bruteforce import (
    brute_force_attack,
    expected_bruteforce_queries_per_key,
)
from repro.workloads.datasets import ATTACKER_USER

PAPER_CLAIM = ("Brute force with 10x the attack's budget extracts zero keys; "
               "prefix siphoning reduces the search space by orders of "
               "magnitude (40992x at paper scale)")
SCALE_NOTE = ("40-bit keys, 50k stored: expected 22M brute-force guesses/key; "
              "brute force gets 3x the siphoning attack's queries")


@functools.lru_cache(maxsize=4)
def run(num_keys: int = 50_000, candidates: int = 30_000,
        budget_multiple: float = 3.0, seed: int = 0) -> ExperimentReport:
    """Run siphoning, then brute force with a multiple of its budget."""
    env = surf_environment(num_keys=num_keys, seed=seed)
    siphon = run_idealized_attack(env, surf_strategy(env, seed=seed + 1),
                                  num_candidates=candidates)
    budget = int(siphon.result.total_queries * budget_multiple)
    brute = brute_force_attack(env.service, ATTACKER_USER,
                               key_width=env.config.key_width,
                               max_queries=budget, seed=seed)
    siphon_qpk = siphon.result.queries_per_key()
    expected_bf = expected_bruteforce_queries_per_key(env.config.key_width,
                                                      num_keys)
    rows = [
        {
            "attack": "prefix siphoning (idealized)",
            "queries": siphon.result.total_queries,
            "keys_extracted": siphon.result.num_extracted,
            "queries_per_key": siphon_qpk,
        },
        {
            "attack": f"brute force ({budget_multiple:g}x budget)",
            "queries": brute.queries,
            "keys_extracted": brute.num_found,
            "queries_per_key": brute.queries_per_key(),
        },
    ]
    return ExperimentReport(
        experiment="bruteforce",
        title="Prefix siphoning vs brute-force guessing",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={
            "expected_bruteforce_queries_per_key": expected_bf,
            "search_space_reduction": expected_bf / siphon_qpk
            if siphon.result.num_extracted else 0.0,
        },
    )
