"""Table 1 — distribution of query response times.

The attacker's preliminary phase issues many ``get()``s for random keys
and buckets the response times at 5 us granularity.  The paper observes an
extremely skewed distribution (88.3% in 5-10 us, 2.7% at >= 25 us) whose
high tail is the filter-positive/I/O mode.
"""

from __future__ import annotations

import functools

from repro.bench.harness import surf_environment
from repro.bench.report import ExperimentReport
from repro.core.learning import learn_cutoff
from repro.workloads.datasets import ATTACKER_USER

PAPER_CLAIM = ("Bimodal distribution: <5us 0.77%, 5-10us 88.3%, 10-15us 7.65%, "
               "15-20us 0.53%, 20-25us 0.05%, >=25us 2.7%; cutoff at 25us "
               "separates negative from positive keys")
SCALE_NOTE = ("50k SHA1 40-bit keys (paper: 50M 64-bit), simulated NVMe + "
              "page cache; >=25us mass tracks the filter FPR, which is "
              "data-dependent")


@functools.lru_cache(maxsize=4)
def run(num_keys: int = 50_000, samples: int = 30_000,
        seed: int = 0) -> ExperimentReport:
    """Build the environment, run the learning phase, report the buckets."""
    env = surf_environment(num_keys=num_keys, seed=seed)
    learning = learn_cutoff(env.service, ATTACKER_USER,
                            key_width=env.config.key_width,
                            num_samples=samples, seed=seed,
                            background=env.background)
    report = ExperimentReport(
        experiment="table1",
        title="Distribution of query response times",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=learning.histogram.as_table(),
        summary={
            "derived_cutoff_us": learning.cutoff_us,
            "samples": samples,
            "slow_fraction": learning.positive_fraction(),
        },
    )
    return report
