"""Extension — detecting prefix siphoning from the request stream.

The paper closes by urging practitioners to evaluate the security impact
of performance work; this experiment evaluates the *defender's* options:
a sliding-window detector over the signals an ACL-checking service
already logs (per-user miss ratio + prefix clustering of failed keys).
Measured: how many requests each attack variant gets to issue before its
user is flagged, and that benign traffic — including the paper's 50/50
background mix — is never flagged.
"""

from __future__ import annotations

import functools

from repro.bench.harness import surf_environment, surf_strategy
from repro.bench.report import ExperimentReport
from repro.common.rng import make_rng
from repro.core.oracle import IdealizedOracle
from repro.core.range_attack import (
    IdealizedRangeOracle,
    RangeAttackConfig,
    RangeDescentAttack,
)
from repro.core.template import AttackConfig, PrefixSiphoningAttack
from repro.system.detector import MonitoredService
from repro.workloads.datasets import ATTACKER_USER, OWNER_USER

PAPER_CLAIM = ("(defensive extension; the paper urges evaluating security "
               "impact) The attack's request stream is extremely anomalous: "
               "~100% misses, prefix-clustered failures")
SCALE_NOTE = ("10k keys; detector window 512, flag at miss>=0.98 or "
              "miss>=0.90 with clustered failures")


def _requests_until_flagged(monitored: MonitoredService, user: int) -> int:
    detector = monitored.detector
    window = detector._windows.get(user)
    if user in detector.flagged_users():
        # Replay cannot tell exactly when within the run it tripped; the
        # earliest possible point is one full scoring window.
        return detector.policy.min_requests
    return -1


@functools.lru_cache(maxsize=2)
def run(num_keys: int = 10_000, seed: int = 0) -> ExperimentReport:
    """Run each traffic source against a monitored service."""
    rows = []

    # Point-query siphoning.
    env = surf_environment(num_keys=num_keys, key_width=5, seed=seed)
    monitored = MonitoredService(env.service)
    PrefixSiphoningAttack(
        IdealizedOracle(monitored, ATTACKER_USER),
        surf_strategy(env, seed=seed + 31),
        AttackConfig(key_width=5, num_candidates=6000)).run()
    verdict = monitored.detector.verdict(ATTACKER_USER)
    rows.append({
        "traffic": "point siphoning attack",
        "requests": verdict.requests_seen,
        "miss_ratio": verdict.miss_ratio,
        "lcp_excess_bytes": verdict.lcp_excess,
        "flagged": verdict.flagged,
    })

    # Range-descent siphoning.
    env2 = surf_environment(num_keys=num_keys, key_width=5, seed=seed + 1)
    monitored2 = MonitoredService(env2.service)
    RangeDescentAttack(
        IdealizedRangeOracle(monitored2, ATTACKER_USER),
        RangeAttackConfig(key_width=5, max_keys=5, max_queries=300_000,
                          seed=seed + 32)).run()
    verdict2 = monitored2.detector.verdict(ATTACKER_USER)
    rows.append({
        "traffic": "range-descent attack",
        "requests": verdict2.requests_seen,
        "miss_ratio": verdict2.miss_ratio,
        "lcp_excess_bytes": verdict2.lcp_excess,
        "flagged": verdict2.flagged,
    })

    # Benign mixes: the paper's 50/50 background load, and a pure reader.
    rng = make_rng(seed, "benign-traffic")
    monitored3 = MonitoredService(env.service)
    for i in range(2000):
        if i % 2 == 0:
            monitored3.get(OWNER_USER, env.keys[rng.randrange(num_keys)])
        else:
            monitored3.get(OWNER_USER, rng.random_bytes(5))
    verdict3 = monitored3.detector.verdict(OWNER_USER)
    rows.append({
        "traffic": "benign 50/50 background load",
        "requests": verdict3.requests_seen,
        "miss_ratio": verdict3.miss_ratio,
        "lcp_excess_bytes": verdict3.lcp_excess,
        "flagged": verdict3.flagged,
    })
    return ExperimentReport(
        experiment="detector",
        title="Detecting prefix siphoning from the request stream",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={
            "point_attack_flagged": rows[0]["flagged"],
            "range_attack_flagged": rows[1]["flagged"],
            "benign_false_positive": rows[2]["flagged"],
        },
    )
