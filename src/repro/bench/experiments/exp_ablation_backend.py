"""Ablation — SuRF backend: reference dict-trie vs succinct LOUDS.

A design-choice bench beyond the paper's tables (DESIGN.md section 5,
decision 2): the two backends must agree on every query; the trie backend
is the fast path for million-query attack simulations while LOUDS
reproduces the real memory layout.  Reports agreement, build time, query
throughput, and measured vs estimated succinct size.
"""

from __future__ import annotations

import functools
import time

from repro.bench.report import ExperimentReport
from repro.common.rng import make_rng
from repro.filters.surf import SuRF
from repro.workloads.keygen import sha1_dataset

PAPER_CLAIM = ("(beyond the paper) Both backends implement section 6.1's "
               "structure; answers must be identical")
SCALE_NOTE = "20k 40-bit keys, 20k mixed-length probe queries"


@functools.lru_cache(maxsize=2)
def run(num_keys: int = 20_000, probes: int = 20_000,
        seed: int = 0) -> ExperimentReport:
    """Build both backends, compare answers, time queries."""
    keys = sha1_dataset(num_keys, 5, seed)
    rng = make_rng(seed, "ablation-backend")
    queries = [rng.random_bytes(rng.randint(1, 6)) for _ in range(probes)]
    queries += keys[::max(1, num_keys // 2000)]

    rows = []
    answers = {}
    for backend in ("trie", "louds"):
        started = time.perf_counter()
        filt = SuRF.build(keys, variant="real", suffix_bits=8,
                          backend=backend)
        build_s = time.perf_counter() - started
        started = time.perf_counter()
        answers[backend] = [filt.may_contain(q) for q in queries]
        query_s = time.perf_counter() - started
        rows.append({
            "backend": backend,
            "build_seconds": build_s,
            "queries_per_second": len(queries) / query_s,
            "bits_per_key": filt.memory_bits() / num_keys,
        })
    agree = answers["trie"] == answers["louds"]
    return ExperimentReport(
        experiment="ablation-backend",
        title="SuRF backend ablation: dict-trie vs LOUDS",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={"backends_agree_on_all_queries": agree,
                 "queries_checked": len(queries)},
    )
