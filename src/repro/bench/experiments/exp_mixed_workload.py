"""Mixed-workload bench: read stalls under compaction, sync vs background.

The MVCC overhaul's performance claim: moving compaction merges off the
serving path (copy-on-install versions + the silent background device)
removes the compaction charges from concurrently-measured request
latencies.  Two measurements, one store layout each mode:

* **read stalls during compact_all** — point reads raced against a
  forced full compaction on a second thread, timed on the shared
  simulated clock.  With inline compaction the clock advances by whole
  merge passes *during* in-flight reads, so the read tail absorbs
  multi-millisecond stalls; with background compaction the merges charge
  a throwaway clock and the tail stays at the ordinary read-path cost.
* **write-side spikes** (deterministic, single-threaded) — per-batch
  ``put_many`` simulated durations.  A batch whose flush trips inline
  compaction pays the whole merge in simulated time; with the background
  thread the same batch pays only its WAL append + flush.

Plus the paper-side sanity check: the siphoning attack, run against a
snapshot while the store churns, still extracts keys (the bench twin of
``tests/integration/test_concurrent_attack_equivalence.py``).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

from repro.bench.report import ExperimentReport
from repro.common.rng import make_rng
from repro.core import (
    AttackConfig,
    PrefixSiphoningAttack,
    SurfAttackStrategy,
    TimingOracle,
    learn_cutoff,
)
from repro.filters import SuRFBuilder
from repro.filters.surf import SuffixScheme, SurfVariant
from repro.lsm.db import LSMTree
from repro.lsm.options import LSMOptions
from repro.storage.background import BackgroundLoad
from repro.system.service import KVService
from repro.workloads import ATTACKER_USER, DatasetConfig, build_environment

PAPER_CLAIM = ("(engineering) the attack needs 10^5-10^6 timed queries "
               "against a live store; serving-path stalls from compaction "
               "would contaminate every timing sample taken during churn")

KEY_WIDTH = 5


def _options(background: bool) -> LSMOptions:
    return LSMOptions(memtable_size_bytes=24 * 1024,
                      sstable_target_bytes=32 * 1024,
                      l0_compaction_trigger=3,
                      background_compaction=background)


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _stall_run(background: bool, num_reads: int,
               batches: int) -> Dict[str, float]:
    """Stream writes, then time reads racing a forced ``compact_all``.

    Phase 1 (single-threaded, deterministic): ``put_many`` batches whose
    flushes trip compactions as they go — per-batch simulated durations
    expose the write-side spikes of inline merging.  Phase 2: refill L0,
    then run ``compact_all`` on a second thread while the main thread
    times point reads on the shared clock.  Inline merging advances that
    clock by whole passes mid-read; the background engine merges on a
    throwaway clock, so the same reads see only the ordinary path cost.
    """
    db = LSMTree(_options(background))
    num_hot = 512
    hot = [b"hot-%06d" % i for i in range(num_hot)]
    for key in hot:
        db.put(key, b"v" * 64)
    db.flush()

    write_times: List[float] = []
    for batch_id in range(batches):
        items = [(b"churn-%08d" % (batch_id * 128 + i), b"w" * 64)
                 for i in range(128)]
        started = db.clock.now_us
        db.put_many(items)
        write_times.append(db.clock.now_us - started)

    # Refill L0 so the raced compact_all has a full merge to do in both
    # modes, whatever ran opportunistically during the stream.
    for batch_id in range(batches, batches + 8):
        db.put_many([(b"churn-%08d" % (batch_id * 128 + i), b"w" * 64)
                     for i in range(128)])

    read_times: List[float] = []
    rng = make_rng(7, "mixed-reads")
    started_wall = time.perf_counter()
    compactor_thread = threading.Thread(target=db.compact_all)
    compactor_thread.start()
    try:
        while compactor_thread.is_alive() or len(read_times) < num_reads:
            key = hot[rng.randrange(num_hot)]
            t0 = db.clock.now_us
            db.get(key)
            read_times.append(db.clock.now_us - t0)
    finally:
        compactor_thread.join()
    wall_s = time.perf_counter() - started_wall
    compactions = (db._bg_compactor or db._compactor).compactions_run
    db.close()
    return {
        "read_p50_us": _percentile(read_times, 0.50),
        "read_p99_us": _percentile(read_times, 0.99),
        "read_max_us": max(read_times),
        "reads_timed": len(read_times),
        "write_p99_us": _percentile(write_times, 0.99),
        "write_max_us": max(write_times),
        "compactions": compactions,
        "leaked_pins": db.leaked_pins,
        "wall_seconds": wall_s,
    }


def _attack_under_churn(num_keys: int) -> Dict[str, float]:
    """Siphon a snapshot while the live tree churns underneath it."""
    env = build_environment(DatasetConfig(
        num_keys=num_keys, key_width=KEY_WIDTH, seed=31,
        filter_builder=SuRFBuilder(variant="real", suffix_bits=8),
        background_compaction=True,
    ))
    snap = env.db.snapshot()
    service = KVService(snap, env.config.distinguish_unauthorized)
    background = BackgroundLoad(snap.cache, env.config.background_load,
                                make_rng(env.config.seed, "snapshot-load"))
    stop = threading.Event()

    def churn() -> None:
        batch_id = 0
        while not stop.is_set():
            items = [(b"churn-%08d" % ((batch_id * 64 + i) % 4096),
                      b"x" * 64) for i in range(64)]
            env.db.put_many(items)
            batch_id += 1

    writer = threading.Thread(target=churn)
    started_wall = time.perf_counter()
    writer.start()
    try:
        learning = learn_cutoff(service, ATTACKER_USER, KEY_WIDTH,
                                num_samples=1200, background=background)
        oracle = TimingOracle(service, ATTACKER_USER,
                              cutoff_us=learning.cutoff_us, rounds=3,
                              background=background, wait_us=100_000.0)
        result = PrefixSiphoningAttack(
            oracle, SurfAttackStrategy(
                KEY_WIDTH, SuffixScheme(SurfVariant.REAL, 8), seed=32),
            AttackConfig(key_width=KEY_WIDTH, num_candidates=4000)).run()
    finally:
        stop.set()
        writer.join()
    wall_s = time.perf_counter() - started_wall
    extracted = {entry.key for entry in result.extracted}
    correct = len(extracted & env.key_set)
    compactions = env.db._bg_compactor.compactions_run
    snap.close()
    env.db.close()
    return {
        "extracted": len(extracted),
        "correct": correct,
        "queries": sum(result.queries_by_stage.values()),
        "sim_duration_us": result.sim_duration_us,
        "compactions_during_attack": compactions,
        "leaked_pins": env.db.leaked_pins,
        "wall_seconds": wall_s,
    }


def run(num_reads: int = 20_000, batches: int = 120,
        attack_keys: int = 3000) -> ExperimentReport:
    """Measure both compaction modes, then attack a snapshot under churn."""
    rows: List[Dict[str, object]] = []
    modes: Dict[str, Dict[str, float]] = {}
    for label, background in (("sync", False), ("background", True)):
        metrics = _stall_run(background, num_reads, batches)
        modes[label] = metrics
        rows.append({"mode": label, **{k: v for k, v in metrics.items()}})

    attack = _attack_under_churn(attack_keys)
    rows.append({"mode": "attack-under-churn", **attack})

    return ExperimentReport(
        experiment="BENCH_mixed_workload",
        title="Mixed workload: read stalls under compaction, sync vs "
              "background MVCC",
        paper_claim=PAPER_CLAIM,
        scale_note=(f"{num_reads:,} timed reads against {batches} "
                    f"128-record write batches per mode; attack over "
                    f"{attack_keys:,} keys with concurrent churn"),
        rows=rows,
        summary={
            "sync_read_p99_us": modes["sync"]["read_p99_us"],
            "background_read_p99_us": modes["background"]["read_p99_us"],
            "sync_read_max_us": modes["sync"]["read_max_us"],
            "background_read_max_us": modes["background"]["read_max_us"],
            # Worst read racing compact_all: with silent-clock merges no
            # read can absorb more than its own path cost, so the tail
            # ratio is the stall-removal factor.
            "read_stall_reduction":
                modes["sync"]["read_max_us"]
                / max(modes["background"]["read_max_us"], 1e-9),
            "sync_write_max_us": modes["sync"]["write_max_us"],
            "background_write_max_us": modes["background"]["write_max_us"],
            "background_compactions": modes["background"]["compactions"],
            "sync_compactions": modes["sync"]["compactions"],
            "attack_extracted": attack["extracted"],
            "attack_correct": attack["correct"],
            "attack_compactions": attack["compactions_during_attack"],
            "no_leaked_pins": (modes["sync"]["leaked_pins"] == 0
                               and modes["background"]["leaked_pins"] == 0
                               and attack["leaked_pins"] == 0),
        },
    )
