"""Figure 8 — idealized prefix siphoning against the prefix Bloom filter.

Stage 1 of the PBF attack detects the configured prefix length l by the
FP-rate bump random l-byte queries exhibit (section 7.2.1); stage 2
guesses random l-byte keys; every positive is either a *prefix false
positive* (a true prefix of a stored key, extendable) or an ordinary Bloom
false positive (extension is wasted).  The paper: 1M guesses yield 457
FPs, 46 keys extracted (matching the expected 45.4 prefix FPs), at 160M
queries/key — 20x worse than SuRF but still orders of magnitude better
than brute force.
"""

from __future__ import annotations

import functools

from repro.analysis.theory import analyze_pbf_attack
from repro.bench.report import ExperimentReport, downsample
from repro.core.oracle import IdealizedOracle
from repro.core.pbf_attack import PbfAttackStrategy
from repro.core.template import AttackConfig, PrefixSiphoningAttack
from repro.filters.prefix_bloom import PrefixBloomFilterBuilder
from repro.workloads.datasets import ATTACKER_USER, DatasetConfig, build_environment

PAPER_CLAIM = ("l detected by the FP-rate bump; 1M guesses -> 457 FPs -> 46 "
               "keys (expected prefix FPs: 45.4); 160M queries/key, 20x worse "
               "than SuRF, ~1000x better than brute force")
SCALE_NOTE = ("50k 32-bit keys, l = 24 bits, 18 bits/key, 50k guesses "
              "(paper: 50M 64-bit keys, l = 40 bits, 1M guesses)")


@functools.lru_cache(maxsize=4)
def run(num_keys: int = 50_000, key_width: int = 4, prefix_len: int = 3,
        candidates: int = 50_000, seed: int = 0) -> ExperimentReport:
    """Detect l, guess prefixes, extend — all via the idealized oracle."""
    env = build_environment(DatasetConfig(
        num_keys=num_keys, key_width=key_width, seed=seed,
        filter_builder=PrefixBloomFilterBuilder(prefix_len=prefix_len,
                                                bits_per_key=18.0),
    ))
    oracle = IdealizedOracle(env.service, ATTACKER_USER)
    strategy = PbfAttackStrategy(key_width=key_width, seed=seed + 3)
    scan = strategy.detect_prefix_length(oracle, min_len=2,
                                         max_len=key_width - 1,
                                         samples_per_length=4_000)
    attack = PrefixSiphoningAttack(oracle, strategy, AttackConfig(
        key_width=key_width, num_candidates=candidates,
        max_extension_queries=1 << 16,
    ))
    result = attack.run()
    stored = env.key_set
    correct = sum(1 for e in result.extracted if e.key in stored)
    expected = analyze_pbf_attack(num_keys, key_width, prefix_len,
                                  guesses=candidates, bloom_fpr=0.012)
    rows = scan.as_rows()
    return ExperimentReport(
        experiment="fig8",
        title="Idealized prefix siphoning against the PBF",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        series={"attack(queries,keys)": downsample(result.progress, 12),
                "q_per_key(queries,q/key)": downsample(
                    result.moving_queries_per_key(), 12)},
        summary={
            "detected_prefix_len": scan.detected,
            "true_prefix_len": prefix_len,
            "fps_found": len(result.prefixes_identified),
            "keys_extracted": result.num_extracted,
            "correct": correct,
            "expected_prefix_fps": expected.expected_prefix_fps,
            "queries_per_key": result.queries_per_key(),
            "wasted_queries": result.wasted_queries,
            "bruteforce_queries_per_key": expected.bruteforce_queries_per_key,
        },
    )
