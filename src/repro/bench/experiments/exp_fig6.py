"""Figure 6 — sensitivity to dataset size.

Idealized attacks against progressively larger datasets (the paper uses
c*10M keys for c in 1..5; we use c*10k) with the *same* FindFPK candidate
set, so any difference is attributable to the datastore size alone.  The
paper's finding: prefix siphoning extracts ~4x more keys from the 5x
larger dataset — the attack gets *more* effective as the LSM-tree's
dataset grows.
"""

from __future__ import annotations

import functools

from repro.bench.harness import (
    correctness,
    run_idealized_attack,
    surf_environment,
    surf_strategy,
)
from repro.bench.report import ExperimentReport, downsample

PAPER_CLAIM = ("Keys extracted grows with dataset size: ~100 keys at 10M "
               "keys vs ~400 at 50M — larger datasets are *more* exposed")
SCALE_NOTE = ("c*10k keys for c in 1..5 (paper: c*10M); same 20k-candidate "
              "set for every size")


@functools.lru_cache(maxsize=4)
def run(base_keys: int = 10_000, steps: int = 5,
        candidates: int = 20_000, seed: int = 0) -> ExperimentReport:
    """Attack c*base_keys datasets with a shared candidate set."""
    rows = []
    series = {}
    for c in range(1, steps + 1):
        env = surf_environment(num_keys=c * base_keys, seed=seed)
        # Identical strategy seed => identical candidate keys across sizes.
        attack = run_idealized_attack(env, surf_strategy(env, seed=seed + 77),
                                      num_candidates=candidates)
        ok, total = correctness(env, attack.result)
        rows.append({
            "dataset_keys": c * base_keys,
            "keys_extracted": total,
            "correct": ok,
            "false_positives_found": len(attack.result.prefixes_identified),
            "total_queries": attack.result.total_queries,
        })
        series[f"{c * base_keys}keys(queries,keys)"] = downsample(
            attack.result.progress, 10)
    growth = (rows[-1]["keys_extracted"] / rows[0]["keys_extracted"]
              if rows[0]["keys_extracted"] else float("inf"))
    return ExperimentReport(
        experiment="fig6",
        title="Keys extracted vs dataset size (idealized, SuRF-Real)",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        series=series,
        summary={"extraction_growth_smallest_to_largest": growth},
    )
