"""Extension — rate limiting as a mitigation (paper section 11).

"A system can rate limit user requests, thereby slowing down prefix
siphoning attacks.  This approach is viable only if the system is not
meant to handle a high rate of normal, benign requests."

The experiment runs the same idealized attack with and without a token
bucket in front of the service, then reports what the mitigation buys:
the extraction count is untouched (the side channel is intact) but the
simulated attack duration explodes in proportion to the rate cap.
"""

from __future__ import annotations

import functools

from repro.bench.report import ExperimentReport
from repro.core.oracle import IdealizedOracle
from repro.core.template import AttackConfig, PrefixSiphoningAttack
from repro.bench.harness import surf_environment, surf_strategy
from repro.system.ratelimit import RateLimitedService, RateLimitPolicy
from repro.workloads.datasets import ATTACKER_USER

PAPER_CLAIM = ("Rate limiting slows the attack down (it does not block it); "
               "viable only for systems without high benign request rates")
SCALE_NOTE = ("10k keys, 15k candidates; attack repeated at descending "
              "per-user rate caps")


@functools.lru_cache(maxsize=2)
def run(num_keys: int = 10_000, candidates: int = 15_000,
        seed: int = 0) -> ExperimentReport:
    """Attack the same store under different rate caps."""
    rows = []
    durations = {}
    for rate in (None, 10_000.0, 1_000.0):
        env = surf_environment(num_keys=num_keys, key_width=5, seed=seed)
        service = env.service
        if rate is not None:
            service = RateLimitedService(env.service,
                                         RateLimitPolicy(rate, burst=64))
        oracle = IdealizedOracle(service, ATTACKER_USER)
        attack = PrefixSiphoningAttack(
            oracle, surf_strategy(env, seed=seed + 4),
            AttackConfig(key_width=5, num_candidates=candidates))
        result = attack.run()
        label = "unlimited" if rate is None else f"{rate:g} req/s"
        durations[label] = result.sim_duration_us
        rows.append({
            "rate_cap": label,
            "keys_extracted": result.num_extracted,
            "total_queries": result.total_queries,
            "sim_duration_minutes": result.sim_duration_us / 6e7,
        })
    slowdown = (durations["1000 req/s"] / durations["unlimited"]
                if durations.get("unlimited") else float("inf"))
    return ExperimentReport(
        experiment="ratelimit",
        title="Rate limiting: slows the attack, does not stop it",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={
            "extraction_unaffected": len({r["keys_extracted"]
                                          for r in rows}) == 1,
            "slowdown_at_1000rps": slowdown,
        },
    )
