"""Figure 3 — actual vs idealized SuRF-Real key extraction.

Runs the full timing attack (learning phase, 4-query averages, breadth-
first waits) and the idealized attack (debug-counter oracle) against the
same RocksDB+SuRF-Real-style store, reporting keys extracted as a function
of total queries.  The paper's findings to reproduce: both curves rise
into hundreds of keys; the idealized attack classifies perfectly so it
finds slightly more, while the actual attack wastes some queries on
misclassified keys but ends within a few dozen keys of the ideal; the
actual attack is far slower in (simulated) real time because it waits for
page-cache evictions.
"""

from __future__ import annotations

import functools
from typing import Tuple

from repro.bench.harness import (
    TimedRun,
    correctness,
    run_idealized_attack,
    run_timing_attack,
    surf_environment,
    surf_strategy,
)
from repro.bench.report import ExperimentReport, downsample

PAPER_CLAIM = ("Both attacks extract hundreds of keys; the idealized attack "
               "finds slightly more FPs (no misclassification) and is ~50x "
               "faster in real time (0.2 vs 10 min/key) since it never waits "
               "for cache evictions")
SCALE_NOTE = ("20k keys, 20k FindFPK candidates (paper: 50M keys, 10M "
              "candidates); actual attack issues 4 queries/candidate")


@functools.lru_cache(maxsize=4)
def run_pair(num_keys: int = 20_000, candidates: int = 20_000,
             seed: int = 0) -> Tuple[TimedRun, TimedRun, object]:
    """One (actual, idealized) attack pair on a shared environment."""
    env = surf_environment(num_keys=num_keys, seed=seed)
    actual = run_timing_attack(env, surf_strategy(env, seed=seed + 1),
                               num_candidates=candidates)
    idealized = run_idealized_attack(env, surf_strategy(env, seed=seed + 1),
                                     num_candidates=candidates)
    return actual, idealized, env


@functools.lru_cache(maxsize=4)
def run(num_keys: int = 20_000, candidates: int = 20_000,
        seed: int = 0) -> ExperimentReport:
    """Report the Figure 3 comparison."""
    actual, idealized, env = run_pair(num_keys, candidates, seed)
    actual_ok, actual_total = correctness(env, actual.result)
    ideal_ok, ideal_total = correctness(env, idealized.result)
    rows = [
        {
            "attack": "actual (timing)",
            "keys_extracted": actual_total,
            "correct": actual_ok,
            "total_queries": actual.result.total_queries,
            "wasted_queries": actual.result.wasted_queries,
            "sim_minutes_per_key": (actual.result.sim_duration_us / 6e7
                                    / max(1, actual_total)),
        },
        {
            "attack": "idealized (counters)",
            "keys_extracted": ideal_total,
            "correct": ideal_ok,
            "total_queries": idealized.result.total_queries,
            "wasted_queries": idealized.result.wasted_queries,
            "sim_minutes_per_key": (idealized.result.sim_duration_us / 6e7
                                    / max(1, ideal_total)),
        },
    ]
    return ExperimentReport(
        experiment="fig3",
        title="Actual vs idealized prefix siphoning against SuRF-Real",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        series={
            "actual(queries,keys)": downsample(actual.result.progress, 16),
            "idealized(queries,keys)": downsample(idealized.result.progress, 16),
        },
        summary={
            "extraction_gap_keys": ideal_total - actual_total,
            "learned_cutoff_us": actual.learning.cutoff_us,
            "actual_vs_ideal_sim_time_ratio": (
                actual.result.sim_duration_us
                / max(1.0, idealized.result.sim_duration_us)),
        },
    )
