"""Ablation — sensitivity to the timing cutoff.

The attack derives its negative/positive cutoff from the distribution's
shape (section 5.3.1).  This ablation sweeps the cutoff across the
distribution and reports the classifier's true/false positive rates at
each point, showing the wide plateau that makes the shape-derived choice
robust — and what the attacker loses when the cutoff sits inside either
mode.
"""

from __future__ import annotations

import functools
from typing import List

from repro.analysis.distribution import classifier_quality
from repro.bench.harness import surf_environment
from repro.bench.report import ExperimentReport
from repro.common.histogram import derive_cutoff
from repro.common.rng import make_rng
from repro.core.learning import BUCKET_WIDTH_US, OVERFLOW_AT_US
from repro.workloads.datasets import ATTACKER_USER

PAPER_CLAIM = ("(beyond the paper) The 25us cutoff of section 10.2.1 sits on "
               "a wide plateau: any cutoff between the modes classifies "
               "nearly perfectly")
SCALE_NOTE = "50k keys, 20k labelled samples, cutoffs swept 5-45us"


@functools.lru_cache(maxsize=2)
def run(num_keys: int = 50_000, samples: int = 20_000,
        seed: int = 0) -> ExperimentReport:
    """Label random-key response times, sweep the cutoff."""
    env = surf_environment(num_keys=num_keys, seed=seed)
    rng = make_rng(seed, "ablation-cutoff")
    times: List[float] = []
    labels: List[bool] = []
    for index in range(samples):
        key = rng.random_bytes(env.config.key_width)
        labels.append(env.db.filters_pass(key))
        _, elapsed = env.service.get_timed(ATTACKER_USER, key)
        times.append(elapsed)
        if (index + 1) % 256 == 0:
            env.background.run_for(env.background.eviction_wait_us())
    derived = derive_cutoff(times, BUCKET_WIDTH_US, OVERFLOW_AT_US)
    rows = []
    for cutoff in (5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 45.0):
        quality = classifier_quality(times, labels, cutoff)
        rows.append({
            "cutoff_us": cutoff,
            "true_positive_rate": quality["true_positive_rate"],
            "false_positive_rate": quality["false_positive_rate"],
            "accuracy": quality["accuracy"],
            "is_derived": abs(cutoff - derived) < BUCKET_WIDTH_US / 2,
        })
    return ExperimentReport(
        experiment="ablation-cutoff",
        title="Cutoff sensitivity of the timing classifier",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={"derived_cutoff_us": derived},
    )
