"""Extension — skewed key distributions (paper section 8).

Section 8 analyzes uniformly random keys as "the worst case for our
attack": with skew, "(1) the guessing and full-key extraction steps can
incorporate this knowledge; and (2) the prefixes SuRF stores are longer,
so our attack will identify longer prefixes and thus extend them to full
keys faster."  This experiment verifies both claims empirically by
attacking a uniform dataset and a clustered one (tenant-style 2-byte
prefixes, publicly known) of equal size with the same budget.
"""

from __future__ import annotations

import functools
from typing import List

from repro.bench.report import ExperimentReport
from repro.core.oracle import IdealizedOracle
from repro.core.surf_attack import SurfAttackStrategy
from repro.core.template import AttackConfig, PrefixSiphoningAttack
from repro.filters.surf import SuRFBuilder, SuffixScheme, SurfVariant
from repro.lsm.db import LSMTree
from repro.lsm.options import LSMOptions
from repro.system.acl import Acl, pack_value
from repro.system.service import KVService
from repro.workloads.datasets import ATTACKER_USER, OWNER_USER
from repro.workloads.keygen import cluster_prefixes, clustered_dataset, sha1_dataset

PAPER_CLAIM = ("Section 8: uniform keys are the attack's worst case — skew "
               "lengthens SuRF's stored prefixes and sharpens guessing, so "
               "the attack extracts more keys faster")
SCALE_NOTE = ("30k 40-bit keys each; clustered = 64 public 2-byte tenant "
              "prefixes + random tails; 30k candidates either way")


class _ClusterAwareStrategy(SurfAttackStrategy):
    """FindFPK that spends its guesses inside the known cluster prefixes."""

    def __init__(self, prefixes: List[bytes], **kwargs) -> None:
        super().__init__(**kwargs)
        self._prefixes = prefixes

    def generate_candidates(self, count: int) -> List[bytes]:
        tail = self.key_width - len(self._prefixes[0])
        return [
            self._prefixes[self._rng.randrange(len(self._prefixes))]
            + self._rng.random_bytes(tail)
            for _ in range(count)
        ]


def _build_service(keys) -> KVService:
    db = LSMTree(LSMOptions(
        filter_builder=SuRFBuilder(variant="real", suffix_bits=8)))
    acl = Acl(owner=OWNER_USER)
    db.bulk_load([(k, pack_value(acl, k[::-1])) for k in keys])
    return KVService(db)


@functools.lru_cache(maxsize=2)
def run(num_keys: int = 30_000, candidates: int = 30_000,
        seed: int = 0) -> ExperimentReport:
    """Attack equal-sized uniform vs clustered datasets."""
    scheme = SuffixScheme(SurfVariant.REAL, 8)
    rows = []
    results = {}

    uniform_keys = sha1_dataset(num_keys, 5, seed)
    clustered_keys = clustered_dataset(num_keys, 5, num_clusters=64,
                                       cluster_prefix_len=2, seed=seed)
    prefixes = cluster_prefixes(64, 2, seed)

    for label, keys, strategy in (
        ("uniform", uniform_keys,
         SurfAttackStrategy(5, scheme, seed=seed + 11)),
        ("clustered (prefix-aware attacker)", clustered_keys,
         _ClusterAwareStrategy(prefixes, key_width=5, filter_scheme=scheme,
                               seed=seed + 11)),
    ):
        service = _build_service(keys)
        oracle = IdealizedOracle(service, ATTACKER_USER)
        attack = PrefixSiphoningAttack(oracle, strategy, AttackConfig(
            key_width=5, num_candidates=candidates))
        result = attack.run()
        results[label] = result
        stored = set(keys)
        identified = result.prefixes_identified
        avg_prefix = (sum(len(p.prefix) for p in identified) / len(identified)
                      if identified else 0.0)
        rows.append({
            "dataset": label,
            "fps_found": len(identified),
            "avg_identified_prefix_bytes": avg_prefix,
            "keys_extracted": result.num_extracted,
            "correct": sum(1 for e in result.extracted if e.key in stored),
            "queries_per_key": result.queries_per_key(),
        })
    uniform_row, clustered_row = rows
    return ExperimentReport(
        experiment="skew",
        title="Skewed key distributions help the attacker (section 8)",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={
            # The two concrete section-8 predictions:
            "skew_longer_prefixes": (
                clustered_row["avg_identified_prefix_bytes"]
                > uniform_row["avg_identified_prefix_bytes"]),
            "skew_cheaper_per_key": (clustered_row["queries_per_key"]
                                     < uniform_row["queries_per_key"]),
            "per_key_cost_ratio": (uniform_row["queries_per_key"]
                                   / clustered_row["queries_per_key"]),
        },
    )
