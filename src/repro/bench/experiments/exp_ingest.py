"""Ingest engine bench: bulk_load / compact_all / put_many wall-clock.

An engineering bench beyond the paper's tables: Fig. 6 rebuilds stores of
1M-50M keys for every configuration, so dataset construction gates every
sweep the way ``get`` wall-clock did before the read-path overhaul.  The
bench runs the same ingest three ways per worker count and reports, on
one machine in one run:

* ``bulk_load`` of a large pre-sorted dataset at ``build_threads`` 0
  (the pre-engine streaming baseline), 1, 2 and 4;
* a forced ``compact_all`` over a many-table store at the same counts;
* ``put_many`` group commit against the equivalent ``put`` loop.

Alongside the timings it digests the complete device state of every run:
the engine's determinism contract (DESIGN.md section 9) makes worker
count invisible in the simulated world, so digests must match across all
bulk-load runs (streaming included — same split rule) and across every
``build_threads >= 1`` compaction (the engine may cut tables at
different boundaries than the streaming path, so the 0-baseline digest
is reported but not required to match).
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Tuple

from repro.bench.report import ExperimentReport
from repro.common.rng import make_rng
from repro.filters.bloom import BloomFilterBuilder
from repro.lsm.db import LSMTree
from repro.lsm.options import LSMOptions
from repro.storage.clock import SimClock
from repro.storage.device import StorageDevice

WORKER_COUNTS = (0, 1, 2, 4)

PAPER_CLAIM = ("(engineering) Fig. 6 sweeps rebuild multi-million-key "
               "stores per configuration; ingest wall-clock gates them")


def _dataset(num_keys: int, seed: int) -> List[Tuple[bytes, bytes]]:
    rng = make_rng(seed, "ingest-bench")
    keys = sorted({rng.random_bytes(8) for _ in range(num_keys)})
    return [(key, key * 3) for key in keys]


def _fresh(workers: int, **overrides) -> Tuple[LSMTree, StorageDevice,
                                               SimClock]:
    clock = SimClock()
    device = StorageDevice(clock)
    options = LSMOptions(filter_builder=BloomFilterBuilder(10),
                         build_threads=workers, **overrides)
    return (LSMTree(options=options, clock=clock, device=device),
            device, clock)


def _digest(device: StorageDevice) -> str:
    state = hashlib.sha256()
    for path in device.list_files():
        state.update(path.encode())
        state.update(device._files[path])
    return state.hexdigest()


def _bench_bulk_load(items, rows) -> Dict[int, Tuple[float, str]]:
    runs: Dict[int, Tuple[float, str]] = {}
    for workers in WORKER_COUNTS:
        db, device, clock = _fresh(workers)
        started = time.perf_counter()
        db.bulk_load(items)
        elapsed = time.perf_counter() - started
        runs[workers] = (elapsed, _digest(device))
        rows.append({
            "phase": "bulk_load",
            "workers": workers,
            "seconds": elapsed,
            "keys_per_second": len(items) / elapsed,
            "sim_us": clock.now_us,
        })
    return runs


def _bench_compact(items, rows) -> Dict[int, Tuple[float, str]]:
    runs: Dict[int, Tuple[float, str]] = {}
    for workers in WORKER_COUNTS:
        # A high L0 trigger parks every flush in L0, so the timed
        # compact_all performs the entire merge in one forced pass.
        db, device, clock = _fresh(workers,
                                   memtable_size_bytes=64 * 1024,
                                   l0_compaction_trigger=10_000)
        for start in range(0, len(items), 512):
            db.put_many(items[start:start + 512])
        started = time.perf_counter()
        db.compact_all()
        elapsed = time.perf_counter() - started
        runs[workers] = (elapsed, _digest(device))
        rows.append({
            "phase": "compact_all",
            "workers": workers,
            "seconds": elapsed,
            "keys_per_second": len(items) / elapsed,
            "sim_us": clock.now_us,
        })
    return runs


def _bench_put_many(items, rows) -> Dict[str, float]:
    db_loop, _, _ = _fresh(1)
    started = time.perf_counter()
    for key, value in items:
        db_loop.put(key, value)
    loop_s = time.perf_counter() - started

    db_batch, _, _ = _fresh(1)
    started = time.perf_counter()
    for start in range(0, len(items), 256):
        db_batch.put_many(items[start:start + 256])
    batch_s = time.perf_counter() - started

    rows.append({"phase": "put loop", "workers": 1, "seconds": loop_s,
                 "keys_per_second": len(items) / loop_s,
                 "sim_us": db_loop.clock.now_us})
    rows.append({"phase": "put_many", "workers": 1, "seconds": batch_s,
                 "keys_per_second": len(items) / batch_s,
                 "sim_us": db_batch.clock.now_us})
    return {"loop_seconds": loop_s, "batch_seconds": batch_s}


def run(num_keys: int = 220_000, compact_keys: int = 60_000,
        batch_keys: int = 40_000, seed: int = 9) -> ExperimentReport:
    """Time the three ingest paths per worker count, digest every run."""
    bulk_items = _dataset(num_keys, seed)
    compact_items = _dataset(compact_keys, seed + 1)
    batch_items = _dataset(batch_keys, seed + 2)

    rows: List[Dict[str, object]] = []
    bulk = _bench_bulk_load(bulk_items, rows)
    compact = _bench_compact(compact_items, rows)
    batched = _bench_put_many(batch_items, rows)

    bulk_digests = {w: digest for w, (_, digest) in bulk.items()}
    compact_digests = {w: digest for w, (_, digest) in compact.items()}
    return ExperimentReport(
        experiment="BENCH_ingest",
        title="Parallel ingest engine: wall-clock vs serial baseline",
        paper_claim=PAPER_CLAIM,
        scale_note=(f"bulk_load {len(bulk_items):,} keys, compact_all over "
                    f"{len(compact_items):,} keys, put_many "
                    f"{len(batch_items):,} keys; build_threads "
                    f"{WORKER_COUNTS}"),
        rows=rows,
        summary={
            "bulk_speedup_4_vs_serial": bulk[0][0] / bulk[4][0],
            "compact_speedup_4_vs_serial": compact[0][0] / compact[4][0],
            "put_many_speedup_vs_loop":
                batched["loop_seconds"] / batched["batch_seconds"],
            "bulk_digests_all_identical":
                len(set(bulk_digests.values())) == 1,
            "compact_engine_digests_identical":
                len({compact_digests[w] for w in (1, 2, 4)}) == 1,
            "bulk_digest": bulk_digests[4],
            "compact_digest_engine": compact_digests[4],
            "compact_digest_serial": compact_digests[0],
        },
    )
