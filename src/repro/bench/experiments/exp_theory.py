"""Section 8 — closed-form complexity analysis, at paper scale and ours.

The analysis module's expectations at the paper's own operating points
(50M 64-bit keys etc.), which the paper reports as ~9-10M queries/key and
a 40992x search-space reduction for SuRF and 45.4 expected prefix FPs for
the PBF — plus the same closed forms at this reproduction's default scale
for direct comparison against the measured benches.
"""

from __future__ import annotations

import functools

from repro.analysis.theory import (
    analyze_pbf_attack,
    analyze_range_attack,
    analyze_surf_attack,
    paper_scale_summary,
)
from repro.bench.report import ExperimentReport
from repro.filters.surf.suffix import SurfVariant

PAPER_CLAIM = ("SuRF at 50M 64-bit keys: ~400 keys from 10M guesses, ~9-10M "
               "queries/key, 40992x over brute force; PBF: 45.4 expected "
               "prefix FPs from 1M guesses, ~160M queries/key")
SCALE_NOTE = "Pure closed forms (no simulation); worst-case uniform keys"


@functools.lru_cache(maxsize=2)
def run() -> ExperimentReport:
    """Evaluate the closed forms at both scales."""
    rows = list(paper_scale_summary())
    ours_surf = analyze_surf_attack(
        num_keys=50_000, key_width=5, variant=SurfVariant.REAL,
        suffix_bits=8, guesses=30_000, max_extension_queries=1 << 16)
    ours_pbf = analyze_pbf_attack(num_keys=50_000, key_width=4, prefix_len=3,
                                  guesses=50_000, bloom_fpr=0.012)
    rows.append({
        "attack": "SuRF-Real (repro scale)",
        "expected_extracted": ours_surf.expected_extracted,
        "queries_per_key": ours_surf.queries_per_key,
        "bruteforce_queries_per_key": ours_surf.bruteforce_queries_per_key,
        "reduction_factor": ours_surf.reduction_factor,
    })
    rows.append({
        "attack": "PBF (repro scale)",
        "expected_extracted": ours_pbf.expected_extracted,
        "queries_per_key": ours_pbf.queries_per_key,
        "bruteforce_queries_per_key": ours_pbf.bruteforce_queries_per_key,
        "reduction_factor": ours_pbf.reduction_factor,
    })
    # The anticipated range-query attack, costed at the paper's scale: it
    # pays about the same per key as the point attack but reaches the
    # whole dataset instead of the FindFPK lottery winners.
    ranged = analyze_range_attack(50_000_000, 8,
                                  max_extension_queries=1 << 24)
    bruteforce = (256.0 ** 8) / 50_000_000
    rows.append({
        "attack": "range-descent (paper scale, anticipated)",
        "expected_extracted": ranged.expected_extracted,
        "queries_per_key": ranged.queries_per_key,
        "bruteforce_queries_per_key": bruteforce,
        "reduction_factor": bruteforce / ranged.queries_per_key,
    })
    return ExperimentReport(
        experiment="theory",
        title="Section-8 complexity analysis (closed forms)",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={
            "surf_fpr_at_repro_scale": ours_surf.fpr,
            "surf_exploitable_probability": ours_surf.exploitable_probability,
        },
    )
