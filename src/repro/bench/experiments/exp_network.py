"""Extension — remote attackers across network noise (threat model, §4).

The paper assumes the attacker observes microsecond-level timing
differences, citing Crosby et al. (~20 us resolution over the Internet,
~100 ns on a LAN) and datacenter co-location.  This experiment replays
the learning phase and the timing classification through network models
of increasing RTT/jitter and reports where the 4-query-average classifier
starts degrading — making the paper's feasibility assumption quantitative
for this reproduction's latency scales.
"""

from __future__ import annotations

import functools
from typing import List

from repro.bench.harness import surf_environment
from repro.bench.report import ExperimentReport
from repro.common.rng import make_rng
from repro.core.learning import learn_cutoff
from repro.core.oracle import TimingOracle
from repro.system.network import DATACENTER, LAN, LOCALHOST, WAN, remote_service
from repro.workloads.datasets import ATTACKER_USER

PAPER_CLAIM = ("Section 4: remote attackers can measure the needed "
               "microsecond differences (Crosby et al.; concurrency-based "
               "attacks); co-locating in the datacenter sharpens resolution")
SCALE_NOTE = ("10k keys; 4-query averages; jitter model per network preset "
              "(localhost/LAN/datacenter/WAN)")


@functools.lru_cache(maxsize=2)
def run(num_keys: int = 10_000, probes: int = 3_000,
        seed: int = 0) -> ExperimentReport:
    """Classification accuracy of the timing oracle per network preset."""
    env = surf_environment(num_keys=num_keys, key_width=5, seed=seed)
    rng = make_rng(seed, "network-probes")
    # Random keys are almost all negatives at this scale; salt the probe
    # set with known false positives (found via the debug oracle) so the
    # detection rate is measurable per preset.
    probe_keys: List[bytes] = [rng.random_bytes(5) for _ in range(probes)]
    found = 0
    while found < 40:
        key = rng.random_bytes(5)
        if env.db.filters_pass(key):
            probe_keys.append(key)
            found += 1
    rng.shuffle(probe_keys)
    truth = [env.db.filters_pass(p) for p in probe_keys]
    positives = sum(truth)

    rows = []
    for model in (LOCALHOST, LAN, DATACENTER, WAN):
        service = remote_service(env.service, model, seed=seed + 7)
        learning = learn_cutoff(service, ATTACKER_USER, 5,
                                num_samples=6_000, seed=seed,
                                background=env.background)
        oracle = TimingOracle(service, ATTACKER_USER,
                              cutoff_us=learning.cutoff_us, rounds=4,
                              background=env.background, wait_us=100_000.0)
        verdicts = oracle.classify(probe_keys)
        tp = sum(1 for v, t in zip(verdicts, truth) if v and t)
        fp = sum(1 for v, t in zip(verdicts, truth) if v and not t)
        rows.append({
            "network": model.name,
            "rtt_us": model.rtt_us,
            "jitter_us": model.jitter_us,
            "baseline_learned_us": learning.baseline_us,
            "fp_detection_rate": tp / positives if positives else 0.0,
            "false_alarm_rate": fp / (len(probe_keys) - positives),
        })
    return ExperimentReport(
        experiment="network",
        title="Remote attacker feasibility across network noise",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={
            "lan_detection": rows[1]["fp_detection_rate"],
            "wan_detection": rows[3]["fp_detection_rate"],
        },
    )
