"""Table 2 — attack queries per stage.

Breakdown of the actual (timing) attack's queries across FindFPK, IdPrefix
and key extraction, plus the wasted queries spent futilely extending
misidentified prefixes.  The paper finds extraction dominating (~92%) with
IdPrefix negligible and ~8% wasted.
"""

from __future__ import annotations

import functools

from repro.bench.experiments.exp_fig3 import run_pair
from repro.bench.report import ExperimentReport

PAPER_CLAIM = ("Step 1 0.35%, step 2 0.0009%, step 3 91.68%, wasted 7.9% — "
               "extension dominates; waste comes from timing "
               "misclassification")
SCALE_NOTE = ("Same run as Figure 3; the actual attack's 4-query averaging "
              "makes step 1's share larger at this scale")


@functools.lru_cache(maxsize=4)
def run(num_keys: int = 20_000, candidates: int = 20_000,
        seed: int = 0) -> ExperimentReport:
    """Report the per-stage query breakdown of the actual attack."""
    actual, _, _ = run_pair(num_keys, candidates, seed)
    rows = actual.result.stage_table()
    return ExperimentReport(
        experiment="table2",
        title="Attack queries per stage",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={
            "total_queries": actual.result.total_queries,
            "prefixes_discarded": actual.result.prefixes_discarded,
            "keys_extracted": actual.result.num_extracted,
        },
    )
