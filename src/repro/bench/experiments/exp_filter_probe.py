"""Filter-probe engine bench: batched probe throughput + attack wall-clock.

An engineering bench beyond the paper's tables: every stage of every
attack — cutoff learning, FindFPK classification, prefix extension — is
at bottom a stream of filter probes, so probe throughput gates attack
wall-clock the way ``get`` latency did before the read-path overhaul and
ingest did before the build engine.  The bench measures, in one run:

* per-filter probe throughput, scalar loop vs :meth:`Filter.probe_many`
  (the engine's pure batch entry point), over a probe mix that is half
  shared-prefix guesses and half uniform noise — the shape FindFPK
  actually issues — asserting the verdict vectors are identical;
* the full SuRF timing attack (LOUDS backend — the paper's succinct
  encoding, where filter probes dominate the get path) twice over twin
  environments, once with ``LSMOptions.probe_engine`` off (the
  pre-engine scalar baseline) and once on, asserting the extracted keys
  and the simulated clock are bit-identical while wall-clock drops.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.bench.report import ExperimentReport
from repro.common.rng import make_rng
from repro.core import (AttackConfig, PrefixSiphoningAttack,
                        SurfAttackStrategy, TimingOracle, learn_cutoff)
from repro.filters.bloom import BloomFilterBuilder
from repro.filters.prefix_bloom import PrefixBloomFilterBuilder
from repro.filters.rosetta import RosettaFilterBuilder
from repro.filters.surf import SuffixScheme, SurfVariant
from repro.filters.surf.surf import SuRFBuilder
from repro.workloads import ATTACKER_USER, DatasetConfig, build_environment

WIDTH = 5

PAPER_CLAIM = ("(engineering) every attack stage is a stream of filter "
               "probes; probe throughput gates attack wall-clock")


def _builders() -> Dict[str, object]:
    return {
        "bloom": BloomFilterBuilder(10.0),
        "pbf": PrefixBloomFilterBuilder(prefix_len=WIDTH - 2),
        "surf-trie": SuRFBuilder(variant="real", suffix_bits=8,
                                 backend="trie"),
        "surf-louds": SuRFBuilder(variant="real", suffix_bits=8,
                                  backend="louds"),
        "rosetta": RosettaFilterBuilder(key_bytes=WIDTH,
                                        bits_per_key_per_level=8.0),
    }


def _probe_mix(keys: List[bytes], num_probes: int, seed: int) -> List[bytes]:
    """FindFPK-shaped probes: half shared-prefix guesses, half noise."""
    rng = make_rng(seed, "probe-mix")
    half = num_probes // 2
    base = keys[::max(1, len(keys) // half)]
    prefixed = [base[i % len(base)][:3] + rng.random_bytes(WIDTH - 3)
                for i in range(half)]
    noise = [rng.random_bytes(WIDTH) for _ in range(num_probes - half)]
    probes = prefixed + noise
    rng.shuffle(probes)
    return probes


def _bench_probes(rows: List[Dict[str, object]], num_keys: int,
                  num_probes: int, seed: int, reps: int) -> Dict[str, float]:
    rng = make_rng(seed, "probe-keys")
    keys = sorted({rng.random_bytes(WIDTH) for _ in range(num_keys)})
    probes = _probe_mix(keys, num_probes, seed + 1)
    speedups: Dict[str, float] = {}
    for name, builder in _builders().items():
        filt = builder.build(keys)
        scalar_probe = filt._may_contain  # the pure per-key hook
        best_scalar = best_batch = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            scalar = [scalar_probe(key) for key in probes]
            best_scalar = min(best_scalar, time.perf_counter() - started)
            started = time.perf_counter()
            batch = filt.probe_many(probes)
            best_batch = min(best_batch, time.perf_counter() - started)
            assert scalar == batch, f"{name}: batch verdicts diverged"
        speedups[name] = best_scalar / best_batch
        rows.append({
            "phase": "probe",
            "filter": name,
            "scalar_probes_per_s": len(probes) / best_scalar,
            "batch_probes_per_s": len(probes) / best_batch,
            "speedup": speedups[name],
        })
    return speedups


def _run_attack(env, num_samples: int, num_candidates: int):
    learning = learn_cutoff(env.service, ATTACKER_USER, WIDTH,
                            num_samples=num_samples,
                            background=env.background)
    oracle = TimingOracle(env.service, ATTACKER_USER,
                          cutoff_us=learning.cutoff_us, rounds=3,
                          background=env.background, wait_us=100_000.0)
    strategy = SurfAttackStrategy(
        WIDTH, SuffixScheme(SurfVariant.REAL, 8), seed=101)
    return PrefixSiphoningAttack(
        oracle, strategy,
        AttackConfig(key_width=WIDTH, num_candidates=num_candidates)).run()


def _bench_attack(rows: List[Dict[str, object]], num_keys: int,
                  num_samples: int, num_candidates: int,
                  seed: int) -> Dict[str, object]:
    results: Dict[bool, Tuple[float, object, float]] = {}
    for engine_on in (False, True):
        env = build_environment(DatasetConfig(
            num_keys=num_keys, key_width=WIDTH, seed=seed,
            filter_builder=SuRFBuilder(variant="real", suffix_bits=8,
                                       backend="louds")))
        env.db.options.probe_engine = engine_on
        started = time.perf_counter()
        result = _run_attack(env, num_samples, num_candidates)
        elapsed = time.perf_counter() - started
        results[engine_on] = (elapsed, result, env.clock.now_us)
        rows.append({
            "phase": "attack",
            "probe_engine": engine_on,
            "seconds": elapsed,
            "extracted_keys": result.num_extracted,
            "total_queries": result.total_queries,
            "sim_duration_us": result.sim_duration_us,
        })
    off_s, off_result, off_clock = results[False]
    on_s, on_result, on_clock = results[True]
    return {
        "attack_wall_off_s": off_s,
        "attack_wall_on_s": on_s,
        "attack_wall_speedup": off_s / on_s,
        "attack_keys_identical":
            [e.key for e in off_result.extracted]
            == [e.key for e in on_result.extracted],
        "attack_sim_identical":
            off_result.sim_duration_us == on_result.sim_duration_us
            and off_clock == on_clock,
    }


def run(num_keys: int = 20_000, num_probes: int = 40_000,
        attack_keys: int = 6_000, attack_samples: int = 2_000,
        attack_candidates: int = 20_000, seed: int = 13,
        reps: int = 3) -> ExperimentReport:
    """Probe-throughput sweep plus the engine-off/on attack pair."""
    rows: List[Dict[str, object]] = []
    speedups = _bench_probes(rows, num_keys, num_probes, seed, reps)
    attack = _bench_attack(rows, attack_keys, attack_samples,
                           attack_candidates, seed + 7)
    summary: Dict[str, object] = {
        f"probe_speedup_{name.replace('-', '_')}": value
        for name, value in speedups.items()
    }
    summary.update(attack)
    return ExperimentReport(
        experiment="BENCH_filter_probe",
        title="Filter-probe engine: batched probes vs scalar loop",
        paper_claim=PAPER_CLAIM,
        scale_note=(f"{num_probes:,} probes against {num_keys:,}-key "
                    f"filters (best of {reps}); SuRF timing attack on "
                    f"{attack_keys:,} keys, {attack_candidates:,} "
                    f"candidates, engine off vs on"),
        rows=rows,
        summary=summary,
    )
