"""Ablation — attack robustness across compaction styles.

The paper evaluates against RocksDB's leveled compaction.  Nothing about
prefix siphoning depends on the tree's shape, though: filters are
per-SSTable, and a ``get`` consults one filter per overlapping run either
way.  This ablation runs the same idealized attack against leveled and
size-tiered trees built from identical data and expects essentially
identical extraction — while also surfacing how the styles differ on the
read path (runs consulted per negative ``get``), the knob an operator
might wrongly hope defends them.
"""

from __future__ import annotations

import functools

from repro.bench.report import ExperimentReport
from repro.core.oracle import IdealizedOracle
from repro.core.surf_attack import SurfAttackStrategy
from repro.core.template import AttackConfig, PrefixSiphoningAttack
from repro.filters.surf import SuRFBuilder, SuffixScheme, SurfVariant
from repro.lsm.db import LSMTree
from repro.lsm.options import LSMOptions
from repro.system.acl import Acl, pack_value
from repro.system.service import KVService
from repro.workloads.datasets import ATTACKER_USER, OWNER_USER
from repro.workloads.keygen import sha1_dataset

PAPER_CLAIM = ("(beyond the paper) The attack rides on per-SSTable filters, "
               "not tree shape: leveled vs size-tiered compaction must not "
               "change what leaks")
SCALE_NOTE = "15k 40-bit keys inserted via the put path, then attacked"


def _build_service(style: str, keys) -> KVService:
    db = LSMTree(LSMOptions(
        compaction_style=style,
        memtable_size_bytes=32 * 1024,
        sstable_target_bytes=32 * 1024,
        filter_builder=SuRFBuilder(variant="real", suffix_bits=8),
    ))
    acl = Acl(owner=OWNER_USER)
    # Insert through the put path so each style shapes its own tree.
    for key in keys:
        db.put(key, pack_value(acl, key[::-1]))
    db.compact_all()
    return KVService(db)


@functools.lru_cache(maxsize=2)
def run(num_keys: int = 15_000, candidates: int = 15_000,
        seed: int = 0) -> ExperimentReport:
    """Same data, same attack, both compaction styles."""
    keys = sha1_dataset(num_keys, 5, seed)
    rows = []
    extracted = {}
    for style in ("leveled", "tiered"):
        service = _build_service(style, keys)
        db = service.db
        before_checks = db.stats.filter_checks
        before_gets = db.stats.gets
        oracle = IdealizedOracle(service, ATTACKER_USER)
        strategy = SurfAttackStrategy(
            5, SuffixScheme(SurfVariant.REAL, 8), seed=seed + 41)
        result = PrefixSiphoningAttack(oracle, strategy, AttackConfig(
            key_width=5, num_candidates=candidates)).run()
        stored = set(keys)
        extracted[style] = {e.key for e in result.extracted}
        gets = db.stats.gets - before_gets
        checks = db.stats.filter_checks - before_checks
        rows.append({
            "compaction": style,
            "runs_or_tables": db.version.total_tables(),
            "filters_per_get": checks / gets if gets else 0.0,
            "keys_extracted": result.num_extracted,
            "correct": sum(1 for e in result.extracted if e.key in stored),
            "queries_per_key": result.queries_per_key(),
        })
    return ExperimentReport(
        experiment="ablation-compaction",
        title="Attack robustness across compaction styles",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={
            "same_keys_leak": extracted["leveled"] == extracted["tiered"],
            "leveled_keys": len(extracted["leveled"]),
            "tiered_keys": len(extracted["tiered"]),
        },
    )
