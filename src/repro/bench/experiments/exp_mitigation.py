"""Section 11 — mitigations.

Three of the paper's proposed defenses, demonstrated end to end:

* **Split point/range filters** (key-value-store level): point queries
  consult a Bloom filter whose FPs are prefix-free — the point attack
  collapses, at roughly doubled filter memory; the section's caveat that
  range-query attacks survive is verified by running the range-descent
  attack against the same store.
* **Rosetta** (filter-level): point queries consult only the bottom-level
  Bloom filter, so false positives are hash collisions sharing no prefix
  with stored keys — IdPrefix identifies nothing extendable and the attack
  extracts zero keys, at the documented memory cost.
* **Indistinguishable responses** (system-level): when the service hides
  whether a failure is non-presence or authorization, step 3 cannot
  confirm keys; the attack still leaks prefixes (section 5.1) but extracts
  no full keys.
"""

from __future__ import annotations

import functools

from repro.bench.harness import (
    run_idealized_attack,
    surf_environment,
    surf_strategy,
)
from repro.bench.report import ExperimentReport
from repro.core.oracle import IdealizedOracle
from repro.core.surf_attack import SurfAttackStrategy
from repro.core.template import AttackConfig, PrefixSiphoningAttack
from repro.filters.rosetta import RosettaFilterBuilder
from repro.filters.surf.suffix import SuffixScheme, SurfVariant
from repro.workloads.datasets import ATTACKER_USER, DatasetConfig, build_environment

PAPER_CLAIM = ("Split point/range filters block the point attack at ~2x "
               "filter memory but not range-query attacks; Rosetta breaks "
               "characteristic C1 (prefix-free FPs) at a larger memory "
               "cost; hiding the unauthorized/non-present distinction "
               "blocks full-key extraction but still leaks prefixes")
SCALE_NOTE = ("20k 40-bit keys for split filters and response hiding; "
              "20k 32-bit keys for Rosetta")


@functools.lru_cache(maxsize=2)
def run(num_keys: int = 20_000, candidates: int = 20_000,
        seed: int = 0) -> ExperimentReport:
    """Attack split-filter, Rosetta, and response-hiding configurations."""
    rows = []

    # --- Split point/range filters: point attack blocked, ranges not ----
    from repro.core.range_attack import (IdealizedRangeOracle,
                                         RangeAttackConfig,
                                         RangeDescentAttack)
    from repro.filters.split import SplitFilterBuilder
    split_env = build_environment(DatasetConfig(
        num_keys=num_keys, key_width=5, seed=seed,
        filter_builder=SplitFilterBuilder()))
    split_oracle = IdealizedOracle(split_env.service, ATTACKER_USER)
    split_strategy = SurfAttackStrategy(
        5, SuffixScheme(SurfVariant.REAL, 8), mode="truncate", seed=seed + 5)
    split_point = PrefixSiphoningAttack(split_oracle, split_strategy,
                                        AttackConfig(
                                            key_width=5,
                                            num_candidates=candidates)).run()
    split_filter = next(split_env.db.version.all_tables()).filter
    rows.append({
        "mitigation": "split point/range filters (point attack)",
        "fps_found": len(split_point.prefixes_identified),
        "keys_extracted": split_point.num_extracted,
        "correct": sum(1 for e in split_point.extracted
                       if e.key in split_env.key_set),
        "wasted_queries": split_point.wasted_queries,
        "filter_bits_per_key": split_filter.bits_per_key(
            split_filter.range_filter.num_keys),
    })
    # verify_mode="none": the split store's point filter is an unrelated
    # Bloom, so point-probe verification does not apply (see range_attack).
    split_range = RangeDescentAttack(
        IdealizedRangeOracle(split_env.service, ATTACKER_USER),
        RangeAttackConfig(key_width=5, max_keys=10, verify_mode="none",
                          max_queries=2_000_000, seed=seed + 6)).run()
    rows.append({
        "mitigation": "split point/range filters (range attack)",
        "fps_found": len(split_range.prefixes_found),
        "keys_extracted": len(split_range.keys),
        "correct": sum(1 for k in split_range.keys
                       if k in split_env.key_set),
        "wasted_queries": split_range.wasted_queries,
        "filter_bits_per_key": float("nan"),
    })

    # --- Rosetta: fixed-width keys, replace-mode IdPrefix ----------------
    env = build_environment(DatasetConfig(
        num_keys=num_keys, key_width=4, seed=seed,
        filter_builder=RosettaFilterBuilder(key_bytes=4,
                                            bits_per_key_per_level=8.0),
    ))
    oracle = IdealizedOracle(env.service, ATTACKER_USER)
    strategy = SurfAttackStrategy(
        key_width=4, filter_scheme=SuffixScheme(SurfVariant.BASE, 0),
        mode="replace", confirm_probes=2, seed=seed + 1)
    attack = PrefixSiphoningAttack(oracle, strategy, AttackConfig(
        key_width=4, num_candidates=candidates,
        max_extension_queries=1 << 10))
    result = attack.run()
    stored = env.key_set
    rosetta_filter = next(env.db.version.all_tables()).filter
    rows.append({
        "mitigation": "rosetta filter",
        "fps_found": len(result.prefixes_identified),
        "keys_extracted": result.num_extracted,
        "correct": sum(1 for e in result.extracted if e.key in stored),
        "wasted_queries": result.wasted_queries,
        "filter_bits_per_key": rosetta_filter.bits_per_key(
            rosetta_filter.num_keys),
    })

    # --- Indistinguishable responses: SuRF store, FAILED-only service ----
    env2 = surf_environment(num_keys=num_keys, key_width=5, seed=seed,
                            distinguish_unauthorized=False)
    # The attacker sees only FAILED responses, so step 3 has no signal to
    # search on: the attack runs in prefix-disclosure mode (extend=False).
    attack2 = run_idealized_attack(env2, surf_strategy(env2, seed=seed + 2),
                                   num_candidates=candidates, extend=False)
    prefixes = attack2.result.prefixes_identified
    true_prefixes = sum(
        1 for p in prefixes
        if any(k.startswith(p.prefix) for k in env2.keys)
    )
    rows.append({
        "mitigation": "hide unauthorized vs not-found",
        "fps_found": len(prefixes),
        "keys_extracted": attack2.result.num_extracted,
        "correct": 0,
        "wasted_queries": attack2.result.wasted_queries,
        "filter_bits_per_key": float("nan"),
    })
    return ExperimentReport(
        experiment="mitigation",
        title="Mitigations: split filters, Rosetta, response hiding",
        paper_claim=PAPER_CLAIM,
        scale_note=SCALE_NOTE,
        rows=rows,
        summary={
            "split_blocks_point_attack": split_point.num_extracted == 0,
            "split_falls_to_range_attack": len(split_range.keys) >= 5,
            "rosetta_blocks_extraction": result.num_extracted == 0,
            "hiding_blocks_extraction": attack2.result.num_extracted == 0,
            "prefixes_still_leaked_with_hiding": true_prefixes,
        },
    )
