"""Experiment dataset construction.

Builds the paper's target system in one call: an LSM-tree with the chosen
filter, bulk-loaded with SHA1-derived keys whose values carry an ACL owned
by a user the attacker is not, fronted by the ACL-checking service — plus
the page cache sized well below the dataset (the paper's cgroup-limited
2 GB DRAM against a ~50 GB store) and a background-load generator to churn
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.filters.base import FilterBuilder
from repro.lsm.db import LSMTree
from repro.lsm.options import LSMOptions
from repro.storage.background import BackgroundLoad, LoadModel
from repro.storage.clock import SimClock
from repro.storage.device import DeviceModel, StorageDevice
from repro.storage.page_cache import PageCache
from repro.system.acl import Acl, pack_value
from repro.system.service import KVService
from repro.workloads.keygen import sha1_dataset

#: The dataset owner's user id.
OWNER_USER = 1
#: The attacker's user id (not authorized for any object).
ATTACKER_USER = 666


@dataclass
class DatasetConfig:
    """Parameters of one experiment environment (DESIGN.md section 2)."""

    num_keys: int = 50_000
    key_width: int = 5
    value_size: int = 64
    seed: int = 0
    filter_builder: Optional[FilterBuilder] = None
    distinguish_unauthorized: bool = True
    #: Page cache as a fraction of on-device dataset bytes; the paper's
    #: setup is ~2 GB DRAM for ~50 GB of data, i.e. ~4%.
    cache_fraction: float = 0.05
    sstable_target_bytes: int = 128 * 1024
    background_load: LoadModel = field(default_factory=LoadModel)
    #: Decoded-block cache entries (``None`` = proportional default,
    #: ``0`` disables — wall-clock knob only, simulated time is identical).
    decoded_cache_entries: Optional[int] = None
    #: Run leveled compaction on the background thread (MVCC read path
    #: pins version snapshots; background merges are free in simulated
    #: time — see DESIGN.md section 12).
    background_compaction: bool = False
    #: Per-version sorted view on the range-read path (``False`` selects
    #: the classic k-way heap merge; results and simulated time are
    #: bit-identical either way — see DESIGN.md section 13).
    sorted_view: bool = True

    def __post_init__(self) -> None:
        if self.num_keys <= 0:
            raise ConfigError("num_keys must be positive")
        if self.key_width <= 0:
            raise ConfigError("key_width must be positive")
        if self.value_size < 0:
            raise ConfigError("value_size must be non-negative")
        if not 0.0 < self.cache_fraction <= 1.0:
            raise ConfigError("cache_fraction must be in (0, 1]")


@dataclass
class Environment:
    """Everything one experiment needs, fully wired."""

    config: DatasetConfig
    clock: SimClock
    device: StorageDevice
    cache: PageCache
    db: LSMTree
    service: KVService
    background: BackgroundLoad
    keys: List[bytes]

    @property
    def key_set(self) -> set:
        """The stored keys as a set (ground-truth checks in tests/benches)."""
        return set(self.keys)


def build_environment(config: DatasetConfig) -> Environment:
    """Construct the attacked system for one experiment."""
    clock = SimClock()
    rng = make_rng(config.seed, "env")
    device = StorageDevice(clock, DeviceModel(), rng.spawn("device"))

    keys = sha1_dataset(config.num_keys, config.key_width, config.seed)
    value_rng = rng.spawn("values")
    acl = Acl(owner=OWNER_USER)
    items = [
        (key, pack_value(acl, value_rng.random_bytes(config.value_size)))
        for key in keys
    ]
    dataset_bytes = sum(len(k) + len(v) for k, v in items)
    cache_bytes = max(device.model.block_size,
                      int(dataset_bytes * config.cache_fraction))
    cache = PageCache(device, cache_bytes,
                      decoded_capacity=config.decoded_cache_entries)

    options = LSMOptions(
        filter_builder=config.filter_builder,
        sstable_target_bytes=config.sstable_target_bytes,
        page_cache_bytes=cache_bytes,
        seed=config.seed,
        background_compaction=config.background_compaction,
        sorted_view=config.sorted_view,
    )
    db = LSMTree(options, clock=clock, device=device, cache=cache)
    db.bulk_load(items)

    service = KVService(db, config.distinguish_unauthorized)
    background = BackgroundLoad(cache, config.background_load,
                                rng.spawn("background"))
    return Environment(config=config, clock=clock, device=device, cache=cache,
                       db=db, service=service, background=background, keys=keys)
