"""Workloads: key generators and experiment dataset construction."""

from repro.workloads.datasets import (
    ATTACKER_USER,
    OWNER_USER,
    DatasetConfig,
    Environment,
    build_environment,
)
from repro.workloads.keygen import (
    StringKeyGenerator,
    UniformKeyGenerator,
    ZipfKeyGenerator,
    cluster_prefixes,
    clustered_dataset,
    sha1_dataset,
)

__all__ = [
    "ATTACKER_USER",
    "DatasetConfig",
    "Environment",
    "OWNER_USER",
    "StringKeyGenerator",
    "UniformKeyGenerator",
    "ZipfKeyGenerator",
    "build_environment",
    "cluster_prefixes",
    "clustered_dataset",
    "sha1_dataset",
]
