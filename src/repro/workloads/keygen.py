"""Key generators for datasets and attack candidates.

The paper's datasets are uniformly random fixed-width keys derived with
SHA1 (section 10.1) — the *worst case* for the attack (section 8), since
skewed distributions only help the attacker.  Generators for skewed and
variable-length string keys are provided for the extension experiments.
"""

from __future__ import annotations

import math
from typing import Iterator, List

from repro.common.errors import ConfigError
from repro.common.keys import sha1_key
from repro.common.rng import make_rng


class UniformKeyGenerator:
    """Uniformly random fixed-width keys (attack candidate stream)."""

    def __init__(self, width: int, seed: int = 0, name: str = "uniform") -> None:
        if width <= 0:
            raise ConfigError(f"key width must be positive, got {width}")
        self.width = width
        self._rng = make_rng(seed, name)

    def next_key(self) -> bytes:
        """One fresh random key."""
        return self._rng.random_bytes(self.width)

    def keys(self, count: int) -> Iterator[bytes]:
        """A stream of ``count`` random keys (duplicates possible)."""
        for _ in range(count):
            yield self.next_key()


def sha1_dataset(num_keys: int, width: int, seed: int = 0) -> List[bytes]:
    """The paper's dataset: ``num_keys`` distinct SHA1-derived keys.

    Deterministic in (num_keys, width, seed); sorted ascending, ready for
    ``bulk_load``.  Collisions (astronomically unlikely at reproduction
    scales) are resolved by extending the index space.
    """
    if num_keys < 0:
        raise ConfigError("num_keys must be non-negative")
    namespace = f"dataset/{seed}".encode()
    seen = set()
    index = 0
    while len(seen) < num_keys:
        seen.add(sha1_key(index, width, namespace))
        index += 1
    return sorted(seen)


def clustered_dataset(num_keys: int, width: int, num_clusters: int = 64,
                      cluster_prefix_len: int = 2, seed: int = 0
                      ) -> List[bytes]:
    """Structured keys: a few shared cluster prefixes plus random tails.

    Models real identifier spaces (tenant ids, table ids, time buckets)
    whose prefixes are far from uniform.  Section 8 predicts such skew
    only *helps* the attacker: SuRF must store longer pruned prefixes, so
    identified prefixes get longer and extension gets cheaper.  The
    cluster prefixes themselves are SHA1-derived and deterministic in the
    seed, so experiments can model a prefix-aware attacker.
    """
    if num_keys < 0:
        raise ConfigError("num_keys must be non-negative")
    if not 0 < cluster_prefix_len < width:
        raise ConfigError("cluster prefix must be shorter than the key")
    if num_clusters <= 0:
        raise ConfigError("need at least one cluster")
    prefixes = cluster_prefixes(num_clusters, cluster_prefix_len, seed)
    rng = make_rng(seed, "clustered")
    tail = width - cluster_prefix_len
    out = set()
    while len(out) < num_keys:
        prefix = prefixes[rng.randrange(num_clusters)]
        out.add(prefix + rng.random_bytes(tail))
    return sorted(out)


def cluster_prefixes(num_clusters: int, cluster_prefix_len: int = 2,
                     seed: int = 0) -> List[bytes]:
    """The (publicly knowable) cluster prefixes of a clustered dataset."""
    seen = []
    index = 0
    while len(seen) < num_clusters:
        prefix = sha1_key(index, cluster_prefix_len, f"clusters/{seed}".encode())
        index += 1
        if prefix not in seen:
            seen.append(prefix)
    return sorted(seen)


class ZipfKeyGenerator:
    """Zipf-skewed keys over a fixed universe (skewed-workload extension).

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``1/r**exponent``; the key for rank ``r`` is SHA1-derived, so the hot
    keys are scattered uniformly across the key space, as in real caches.
    """

    def __init__(self, universe: int, width: int, exponent: float = 1.1,
                 seed: int = 0) -> None:
        if universe <= 0:
            raise ConfigError("universe size must be positive")
        if exponent <= 0:
            raise ConfigError("zipf exponent must be positive")
        self.universe = universe
        self.width = width
        self.exponent = exponent
        self._rng = make_rng(seed, "zipf")
        # Inverse-CDF sampling over precomputed cumulative weights.
        weights = [1.0 / (r ** exponent) for r in range(1, universe + 1)]
        total = math.fsum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        self._cumulative = cumulative

    def next_key(self) -> bytes:
        """One Zipf-distributed key."""
        u = self._rng.random()
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return sha1_key(lo, self.width, b"zipf")


class StringKeyGenerator:
    """Variable-length ASCII keys (object-store names, DB row keys).

    Keys look like ``<bucket>/<object>-<counter>``: realistic shared
    prefixes, exactly the structure SuRF prunes well and the attack then
    reveals.
    """

    _BUCKETS = ["invoices", "payroll", "users", "media", "logs", "backups"]

    def __init__(self, seed: int = 0) -> None:
        self._rng = make_rng(seed, "strings")
        self._counter = 0

    def next_key(self) -> bytes:
        """One fresh hierarchical string key."""
        bucket = self._rng.choice(self._BUCKETS)
        token = "".join(
            chr(ord("a") + self._rng.randrange(26))
            for _ in range(self._rng.randint(4, 10))
        )
        self._counter += 1
        return f"{bucket}/{token}-{self._counter:06d}".encode()

    def keys(self, count: int) -> List[bytes]:
        """``count`` distinct keys, sorted."""
        out = set()
        while len(out) < count:
            out.add(self.next_key())
        return sorted(out)
