"""The paper's primary contribution: the prefix siphoning attack framework."""

from repro.core.bruteforce import (
    BruteForceResult,
    brute_force_attack,
    expected_bruteforce_queries_per_key,
)
from repro.core.extension import (
    ExtensionResult,
    HashConstraint,
    VariableExtensionResult,
    expected_extension_queries,
    extend_prefix,
    extend_prefix_variable,
)
from repro.core.learning import (
    BUCKET_WIDTH_US,
    FINE_BUCKET_WIDTH_US,
    OVERFLOW_AT_US,
    LearningResult,
    learn_cutoff,
    learn_fine_cutoff,
)
from repro.core.oracle import FineTimingOracle, IdealizedOracle, QueryOracle, TimingOracle
from repro.core.parallel import (
    FleetMemberOutcome,
    FleetOutcome,
    ParallelAttackOutcome,
    ParallelPrefixSiphoningAttack,
    ParallelTimingOracle,
    run_attacker_fleet,
    run_parallel_surf_attack,
)
from repro.core.pbf_attack import PbfAttackStrategy, PrefixLengthScan
from repro.core.results import (
    STAGE_EXTEND,
    STAGE_FIND_FPK,
    STAGE_ID_PREFIX,
    STAGE_LEARNING,
    AttackResult,
    ExtractedKey,
    PrefixCandidate,
    QueryCounter,
)
from repro.core.range_attack import (
    IdealizedRangeOracle,
    RangeAttackConfig,
    RangeAttackResult,
    RangeDescentAttack,
    RangeOracle,
    TimingRangeOracle,
)
from repro.core.surf_attack import SurfAttackStrategy
from repro.core.template import AttackConfig, PrefixSiphoningAttack

__all__ = [
    "AttackConfig",
    "AttackResult",
    "BUCKET_WIDTH_US",
    "BruteForceResult",
    "ExtensionResult",
    "ExtractedKey",
    "FleetMemberOutcome",
    "FleetOutcome",
    "HashConstraint",
    "IdealizedOracle",
    "LearningResult",
    "OVERFLOW_AT_US",
    "ParallelAttackOutcome",
    "ParallelPrefixSiphoningAttack",
    "ParallelTimingOracle",
    "PbfAttackStrategy",
    "PrefixCandidate",
    "PrefixLengthScan",
    "PrefixSiphoningAttack",
    "QueryCounter",
    "RangeAttackConfig",
    "RangeAttackResult",
    "RangeDescentAttack",
    "RangeOracle",
    "IdealizedRangeOracle",
    "TimingRangeOracle",
    "QueryOracle",
    "STAGE_EXTEND",
    "STAGE_FIND_FPK",
    "STAGE_ID_PREFIX",
    "STAGE_LEARNING",
    "SurfAttackStrategy",
    "TimingOracle",
    "brute_force_attack",
    "expected_bruteforce_queries_per_key",
    "expected_extension_queries",
    "extend_prefix",
    "extend_prefix_variable",
    "VariableExtensionResult",
    "learn_cutoff",
    "learn_fine_cutoff",
    "run_attacker_fleet",
    "run_parallel_surf_attack",
    "FineTimingOracle",
    "FINE_BUCKET_WIDTH_US",
]
