"""Range-descent siphoning: the range-query attack the paper anticipates.

The paper's point-query attack deliberately never issues range queries and
leaves "exploring attacks against range queries to future work" (section
5); its mitigation discussion warns that maintaining separate point/range
filters "will not block attacks that target range queries (which we
believe are possible, and are currently exploring)" (section 11).  This
module realizes that anticipated attack.

The primitive is a *range membership test*: a ``range_query(low, high)``
whose range every filter rejects is served without I/O, so — exactly as
with point queries — its response time reveals the filter's one-sided
answer to "does any stored key lie in [low, high]?".  Unlike FindFPK's
random guessing, the attacker can now walk the dataset's trie directly:
for each one-symbol extension of a known-occupied prefix, one range test
says whether the branch is occupied.

For *pruned* tries (SuRF) the walk cannot refine below a pruned leaf —
every subrange of a leaf's span is ambiguous-positive.  The attack detects
that boundary with a **singleton probe**: a random full-width key under
the prefix queried as a one-key range.  A true branch answers negative
(the random key misses its sparse children w.h.p.); a pruned leaf answers
positive for anything.  At the boundary the attack emits the prefix and
falls back to the paper's step-3 suffix extension.  The result is the
systematic analogue of steps 1+2: instead of the small random fraction of
prefixes FindFPK surfaces, range descent enumerates *every* stored key's
pruned prefix in lexicographic order, at O(|alphabet|) range tests per
trie node.

Against Rosetta — which defeats the point-query attack — range descent is
*worse*: Rosetta's per-level Bloom filters resolve ranges all the way to
full-width keys, so the descent enumerates exact keys with no extension
step at all, confirming section 11's caution that non-vulnerable point
behaviour does not imply non-vulnerable range behaviour.

RocksDB's PBF only answers within-prefix ranges and conservatively passes
everything wider, which stalls the descent in ambiguity immediately; the
tests pin that down.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import AttackError, ConfigError
from repro.common.rng import make_rng
from repro.core.extension import HashConstraint, extend_prefix
from repro.storage.background import BackgroundLoad
from repro.system.responses import Status
from repro.system.service import KVService

#: Alphabet size; symbols are bytes throughout the reproduction.
_ALPHABET = 256


class RangeOracle(abc.ABC):
    """Attacker-side range membership test with query accounting."""

    def __init__(self, service: KVService, attacker_user: int) -> None:
        self.service = service
        self.attacker_user = attacker_user
        self.range_queries = 0
        self.point_queries = 0

    @abc.abstractmethod
    def range_may_contain(self, low: bytes, high: bytes) -> bool:
        """One-sided emptiness test for ``[low, high]``."""

    @abc.abstractmethod
    def point_may_contain(self, key: bytes) -> bool:
        """Point-query filter decision (the section-6 primitive), used to
        verify and sharpen range-descent leaf candidates."""

    def probe(self, key: bytes) -> Status:
        """Point probe (step-3 extension and key confirmation)."""
        self.point_queries += 1
        return self.service.get(self.attacker_user, key).status

    @property
    def total_queries(self) -> int:
        """All queries issued (range + point)."""
        return self.range_queries + self.point_queries


class IdealizedRangeOracle(RangeOracle):
    """Exact range-filter decisions from engine debug counters."""

    def range_may_contain(self, low: bytes, high: bytes) -> bool:
        self.range_queries += 1
        return self.service.db.range_filters_pass(low, high)

    def point_may_contain(self, key: bytes) -> bool:
        self.point_queries += 1
        return self.service.db.filters_pass(key)


class TimingRangeOracle(RangeOracle):
    """Range membership via response-time measurement.

    Mirrors the point-query oracle of section 9: ``rounds``-query averages
    against a latency cutoff, with background-load cache churn between
    rounds so positive ranges keep paying I/O.
    """

    def __init__(self, service: KVService, attacker_user: int,
                 cutoff_us: float, rounds: int = 4,
                 background: Optional[BackgroundLoad] = None,
                 wait_us: Optional[float] = None) -> None:
        super().__init__(service, attacker_user)
        if cutoff_us <= 0:
            raise ConfigError(f"cutoff must be positive, got {cutoff_us}")
        if rounds < 1:
            raise ConfigError(f"rounds must be at least 1, got {rounds}")
        self.cutoff_us = cutoff_us
        self.rounds = rounds
        self.background = background
        if wait_us is None and background is not None:
            wait_us = background.eviction_wait_us()
        self.wait_us = wait_us or 0.0

    def range_may_contain(self, low: bytes, high: bytes) -> bool:
        total = 0.0
        for round_index in range(self.rounds):
            self.range_queries += 1
            _, elapsed = self.service.range_query_timed(
                self.attacker_user, low, high, limit=1)
            total += elapsed
            if self.background is not None and round_index + 1 < self.rounds:
                self.background.run_for(self.wait_us)
        return total / self.rounds >= self.cutoff_us

    def point_may_contain(self, key: bytes) -> bool:
        total = 0.0
        for round_index in range(self.rounds):
            self.point_queries += 1
            _, elapsed = self.service.get_timed(self.attacker_user, key)
            total += elapsed
            if self.background is not None and round_index + 1 < self.rounds:
                self.background.run_for(self.wait_us)
        return total / self.rounds >= self.cutoff_us


@dataclass
class RangeAttackConfig:
    """Knobs of a range-descent run."""

    key_width: int = 5
    #: Stop after this many keys (None = exhaustive enumeration).
    max_keys: Optional[int] = None
    #: Total query budget (None = unbounded).
    max_queries: Optional[int] = None
    #: Restrict the descent below a known prefix (e.g. a table id).
    start_prefix: bytes = b""
    #: Per-prefix budget for the step-3 suffix extension.
    max_extension_queries: int = 1 << 16
    #: Singleton probes per pruned-leaf test; more probes shrink the
    #: chance of mistaking a true branch for a leaf.
    leaf_probes: int = 1
    #: How to verify flagged leaves before extending.  "point" (default)
    #: uses point-filter probes + truncation IdPrefix — correct whenever
    #: point and range decisions share the trie (SuRF, Rosetta).  "none"
    #: registers flagged candidates directly, for split-filter stores
    #: whose point filter is an unrelated Bloom (section 11): the range
    #: tests above the pruned leaves are exact, so candidates are true
    #: prefixes, at the cost of never refining below a leaf's depth.
    verify_mode: str = "point"
    #: Point probes used to verify a flagged leaf before paying for its
    #: suffix extension.  SuRF-Real verifies in one probe (its stored
    #: suffix byte is deterministic); SuRF-Hash needs ~2**hash_bits.
    verify_probes: int = 4
    #: SuRF-Hash pruning bits (0 = no pruning); the constraint value is
    #: recovered from the verification witness, which passed the filter.
    hash_bits: int = 0
    #: How many consecutive flagged-but-rejected siblings may trigger an
    #: extra level of descent before the run is written off as a pruned
    #: leaf's ambiguous shadow (see ``_descend``).
    reject_descend_limit: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.key_width <= 0:
            raise ConfigError("key width must be positive")
        if len(self.start_prefix) >= self.key_width:
            raise ConfigError("start prefix must be shorter than the key")
        if self.leaf_probes < 1:
            raise ConfigError("leaf_probes must be at least 1")
        if self.verify_probes < 1:
            raise ConfigError("verify_probes must be at least 1")
        if self.reject_descend_limit < 0:
            raise ConfigError("reject_descend_limit must be non-negative")
        if self.verify_mode not in ("point", "none"):
            raise ConfigError(f"unknown verify mode {self.verify_mode!r}")


@dataclass
class RangeAttackResult:
    """Outcome of one range-descent run."""

    keys: List[bytes] = field(default_factory=list)
    prefixes_found: List[bytes] = field(default_factory=list)
    range_queries: int = 0
    point_queries: int = 0
    wasted_queries: int = 0
    exhausted_budget: bool = False
    #: (total queries, keys found) checkpoints.
    progress: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def total_queries(self) -> int:
        """All queries issued."""
        return self.range_queries + self.point_queries

    def queries_per_key(self) -> float:
        """Amortized cost per disclosed key."""
        if not self.keys:
            return float("inf")
        return self.total_queries / len(self.keys)


class RangeDescentAttack:
    """Trie walk over the dataset through range-filter timing."""

    def __init__(self, oracle: RangeOracle, config: RangeAttackConfig) -> None:
        self.oracle = oracle
        self.config = config
        self._rng = make_rng(config.seed, "range-descent")
        self._seen_prefixes = set()

    def run(self) -> RangeAttackResult:
        """Execute the descent and return its accounting."""
        result = RangeAttackResult()
        try:
            self._descend(self.config.start_prefix, result)
        except _BudgetExhausted:
            result.exhausted_budget = True
        result.range_queries = self.oracle.range_queries
        result.point_queries = self.oracle.point_queries
        result.progress.append((result.total_queries, len(result.keys)))
        return result

    # ---------------------------------------------------------------- descent

    def _descend(self, prefix: bytes, result: RangeAttackResult) -> None:
        width = self.config.key_width
        # Flagged-but-rejected candidates sometimes deserve one more level
        # of descent: when the candidate sits exactly at a pruned leaf's
        # depth, the discriminating suffix byte is not part of it yet and
        # only the next level's candidates embed it.  But *runs* of
        # flagged-rejected siblings are the shadow of a leaf above (every
        # subrange ambiguous, every suffix byte wrong), where descending
        # cascades uselessly — so reject-descents are rationed per run.
        reject_run = 0
        for symbol in range(_ALPHABET):
            self._check_limits(result)
            candidate = prefix + bytes([symbol])
            low, high = _prefix_range(candidate, width)
            if not self.oracle.range_may_contain(low, high):
                reject_run = 0
                continue
            if len(candidate) == width:
                self._confirm(candidate, result)
                continue
            if not self._looks_pruned(candidate, result):
                self._descend(candidate, result)
                reject_run = 0
                continue
            if self.config.verify_mode == "none":
                self._register(candidate, None, result)
                continue
            resolved = self._resolve_leaf(candidate, result)
            if resolved is None:
                result.wasted_queries += self.config.verify_probes
                if reject_run < self.config.reject_descend_limit:
                    self._descend(candidate, result)
                reject_run += 1
                continue
            reject_run = 0
            true_prefix, witness = resolved
            self._register(true_prefix, witness, result)
            if len(true_prefix) <= len(prefix):
                # The pruned leaf sits at or above this level's parent:
                # every sibling would resolve to the same prefix.
                return

    def _looks_pruned(self, prefix: bytes, result: RangeAttackResult) -> bool:
        """Singleton probes: positive for random keys means ambiguity.

        A filter that resolves ranges at full depth (Rosetta) answers the
        singleton negatively w.h.p., so the descent keeps refining; a
        pruned trie (SuRF) answers positively for anything under a leaf.
        Table key-range metadata can clip singletons into false negatives;
        the downstream point verification absorbs the consequences.
        """
        suffix_len = self.config.key_width - len(prefix)
        for _ in range(self.config.leaf_probes):
            self._check_limits(result)
            probe = prefix + self._rng.random_bytes(suffix_len)
            if not self.oracle.range_may_contain(probe, probe):
                return False
        return True

    def _resolve_leaf(self, candidate: bytes, result: RangeAttackResult
                      ) -> Optional[Tuple[bytes, bytes]]:
        """Verify a flagged leaf with point queries and pin its prefix.

        First find a *witness*: a random full-width key under the
        candidate that passes the point filter (for SuRF-Real this
        succeeds deterministically iff the candidate agrees with the
        stored suffix byte).  Then run the paper's truncation IdPrefix on
        the witness to identify the true shared prefix.  Returns
        ``(prefix, witness)`` or None if no witness emerged.
        """
        width = self.config.key_width
        suffix_len = width - len(candidate)
        witness = None
        for _ in range(self.config.verify_probes):
            self._check_limits(result)
            probe = candidate + self._rng.random_bytes(suffix_len)
            if self.oracle.point_may_contain(probe):
                witness = probe
                break
        if witness is None:
            return None
        # Truncation IdPrefix (section 6.2.2) over the point oracle.
        for length in range(width - 1, 0, -1):
            self._check_limits(result)
            if not self.oracle.point_may_contain(witness[:length]):
                return witness[:length + 1], witness
        return witness[:1], witness

    def _register(self, prefix: bytes, witness: Optional[bytes],
                  result: RangeAttackResult) -> None:
        if prefix in self._seen_prefixes:
            return
        self._seen_prefixes.add(prefix)
        result.prefixes_found.append(prefix)
        self._extend(prefix, witness, result)

    def _extend(self, prefix: bytes, witness: Optional[bytes],
                result: RangeAttackResult) -> None:
        """Step-3 suffix extension below an identified pruned prefix.

        Prefixes whose (hash-pruned) suffix space exceeds the per-prefix
        budget are kept as prefix-only disclosures — the same feasibility
        rule the point attack's step 3 applies.
        """
        self._check_limits(result)
        space = _ALPHABET ** (self.config.key_width - len(prefix))
        if (space >> self.config.hash_bits) > self.config.max_extension_queries:
            return
        constraint = None
        if self.config.hash_bits and witness is not None:
            # The witness passed the filter, so its hash bits equal the
            # stored key's (section 6.2.2).
            from repro.filters.hashing import suffix_hash_bits
            constraint = HashConstraint(
                self.config.hash_bits,
                suffix_hash_bits(witness, self.config.hash_bits))
        extension = extend_prefix(
            _PointOracleAdapter(self.oracle), prefix, self.config.key_width,
            hash_constraint=constraint,
            max_queries=self._remaining_budget(),
        )
        if extension.found:
            result.keys.append(extension.key)
            result.progress.append((self.oracle.total_queries,
                                    len(result.keys)))
        else:
            result.wasted_queries += extension.queries_spent

    def _confirm(self, key: bytes, result: RangeAttackResult) -> None:
        self._check_limits(result)
        status = self.oracle.probe(key)
        if status in (Status.UNAUTHORIZED, Status.OK):
            result.keys.append(key)
            result.progress.append((self.oracle.total_queries,
                                    len(result.keys)))
        else:
            result.wasted_queries += 1

    def _remaining_budget(self) -> Optional[int]:
        per_prefix = self.config.max_extension_queries
        if self.config.max_queries is None:
            return per_prefix
        left = self.config.max_queries - self.oracle.total_queries
        return max(1, min(per_prefix, left))

    def _check_limits(self, result: RangeAttackResult) -> None:
        if (self.config.max_keys is not None
                and len(result.keys) >= self.config.max_keys):
            raise _BudgetExhausted()
        if (self.config.max_queries is not None
                and self.oracle.total_queries >= self.config.max_queries):
            raise _BudgetExhausted()


class _PointOracleAdapter:
    """Expose a :class:`RangeOracle`'s point probe to ``extend_prefix``."""

    def __init__(self, oracle: RangeOracle) -> None:
        self._oracle = oracle

    def probe(self, key: bytes) -> Status:
        return self._oracle.probe(key)


class _BudgetExhausted(Exception):
    """Internal control flow: query budget or key target reached."""


def _prefix_range(prefix: bytes, width: int) -> Tuple[bytes, bytes]:
    """The closed key range covered by ``prefix`` at full ``width``."""
    if len(prefix) > width:
        raise AttackError("prefix longer than the key width")
    pad = width - len(prefix)
    return prefix + b"\x00" * pad, prefix + b"\xff" * pad
