"""Positive/negative oracles: the attacker's view of filter decisions.

Two implementations of the same interface:

* :class:`TimingOracle` — the real attack.  Classifies keys by averaging
  the response times of several queries per key, executed breadth-first
  with background-load cache churn between rounds (paper section 9), and
  comparing against the cutoff learned in the preliminary phase.
* :class:`IdealizedOracle` — the paper's idealized attack (section
  10.2.2), which reads the engine's filter decision from debugging
  counters instead of timing, never misclassifying.

Both also expose :meth:`probe`, the response-code query used by step 3
(extension does not need timing: "not found" vs "unauthorized" is the
signal).
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.core.results import QueryCounter
from repro.lsm.db import LSMTree
from repro.storage.background import BackgroundLoad
from repro.system.responses import Status
from repro.system.service import KVService


class QueryOracle(abc.ABC):
    """Attacker-side query interface with per-stage accounting."""

    def __init__(self, service: KVService, attacker_user: int) -> None:
        self.service = service
        self.attacker_user = attacker_user
        self.counter = QueryCounter()
        #: The probe plan backing the most recent :meth:`prober_for`
        #: closure.  A plan pins an MVCC version; holding at most one at
        #: a time (released on the next prepass or :meth:`release_plan`)
        #: keeps a long attack from accumulating pinned versions.
        self._active_plan = None

    def release_plan(self) -> None:
        """Unpin the version behind the last primed prober (idempotent)."""
        plan, self._active_plan = self._active_plan, None
        if plan is not None:
            plan.release()

    @abc.abstractmethod
    def classify(self, keys: Sequence[bytes]) -> List[bool]:
        """True per key iff the key looks *positive* (passes some filter)."""

    def wait_for_eviction(self) -> None:
        """Between-iteration pause (section 9); oracles that need the page
        cache cold override this, others inherit the no-op."""

    def probe(self, key: bytes) -> Status:
        """One authorization-observing query (step-3 extension probe)."""
        self.counter.charge(1)
        return self.service.get(self.attacker_user, key).status

    def prober(self) -> Callable[[bytes], Status]:
        """Fast ``key -> Status`` callable equivalent to :meth:`probe`.

        Built on the service's batch-get closure when available (hoisting
        per-request overhead out of the extension loops, which issue up to
        ``max_extension_queries`` probes per prefix); falls back to
        :meth:`probe` otherwise.  Accounting and simulated charges are
        identical either way.
        """
        getter = getattr(self.service, "getter", None)
        if getter is None:
            return self.probe
        get_one = getter(self.attacker_user)
        counter = self.counter

        def probe_one(key: bytes) -> Status:
            counter.charge(1)
            return get_one(key).status

        return probe_one

    def probe_many(self, keys: Sequence[bytes]) -> List[Status]:
        """Batch of :meth:`probe` calls (same accounting, amortized)."""
        probe_one = self.prober()
        return [probe_one(key) for key in keys]

    def prober_for(self, keys: Sequence[bytes]) -> Callable[[bytes], Status]:
        """:meth:`prober`, primed for an upcoming candidate batch.

        When the service exposes the store's probe engine, the batch's
        filter verdicts are precomputed in one pure pass (vectorized
        Bloom hashing, shared-prefix trie traversal) and the returned
        per-key prober replays against the memo.  The prepass touches no
        stats, clock, or RNG and the replay consumes verdicts in call
        order, so probing any prefix of ``keys`` — the extension loops
        stop at the first hit — is bit-identical to :meth:`prober`,
        including the accounting of the probes never issued.
        """
        getter = getattr(self.service, "getter", None)
        probe_plan = getattr(getattr(self.service, "db", None),
                             "probe_plan", None)
        if getter is None or probe_plan is None:
            return self.prober()
        plan = probe_plan(list(keys))
        self.release_plan()
        if plan is None:  # engine disabled, or nothing reaches a filter
            return self.prober()
        self._active_plan = plan
        get_one = getter(self.attacker_user, plan)
        counter = self.counter

        def probe_one(key: bytes) -> Status:
            counter.charge(1)
            return get_one(key).status

        return probe_one


class TimingOracle(QueryOracle):
    """Classification by response-time measurement (the actual attack)."""

    def __init__(self, service: KVService, attacker_user: int,
                 cutoff_us: float, rounds: int = 4,
                 background: Optional[BackgroundLoad] = None,
                 wait_us: Optional[float] = None) -> None:
        super().__init__(service, attacker_user)
        if cutoff_us <= 0:
            raise ConfigError(f"cutoff must be positive, got {cutoff_us}")
        if rounds < 1:
            raise ConfigError(f"rounds must be at least 1, got {rounds}")
        self.cutoff_us = cutoff_us
        self.rounds = rounds
        self.background = background
        # Default wait: long enough for the background load to displace the
        # page cache (the simulated analogue of the paper's 20 s).
        if wait_us is None and background is not None:
            wait_us = background.eviction_wait_us()
        self.wait_us = wait_us or 0.0

    def classify(self, keys: Sequence[bytes]) -> List[bool]:
        """Breadth-first ``rounds``-query averages against the cutoff.

        One query per key per round; the page-cache eviction wait happens
        once per round, not once per key — the scheduling insight of
        section 9 that makes the attack practical.
        """
        totals = [0.0] * len(keys)
        for round_index in range(self.rounds):
            self.counter.charge(len(keys))
            timed = self.service.get_many_timed(self.attacker_user, keys)
            for i, (_, elapsed) in enumerate(timed):
                totals[i] += elapsed
            if self.background is not None and round_index + 1 < self.rounds:
                self.background.run_for(self.wait_us)
        return [total / self.rounds >= self.cutoff_us for total in totals]

    def wait_for_eviction(self) -> None:
        """Explicit between-iteration wait (used by multi-batch stages)."""
        if self.background is not None:
            self.background.run_for(self.wait_us)


class FineTimingOracle(QueryOracle):
    """Classification via the cached-positive channel (section 5.2 footnote).

    Queries each key once to pull any covered SSTable block into the page
    cache, then averages ``rounds`` back-to-back measurements: a cached
    positive pays the (small but consistent) block-access cost on every
    query, a negative never does.  No eviction waits — the attack runs at
    full query throughput, trading more queries per key for zero waiting,
    the opposite corner of the trade-off the paper's section 9 scheduler
    occupies.
    """

    def __init__(self, service: KVService, attacker_user: int,
                 cutoff_us: float, rounds: int = 12) -> None:
        super().__init__(service, attacker_user)
        if cutoff_us <= 0:
            raise ConfigError(f"cutoff must be positive, got {cutoff_us}")
        if rounds < 2:
            raise ConfigError("fine-grained averaging needs at least 2 rounds")
        self.cutoff_us = cutoff_us
        self.rounds = rounds

    def classify(self, keys: Sequence[bytes]) -> List[bool]:
        """Warm-then-average classification, no waits.

        One ``get_many_timed`` call covers the whole key set: the
        schedule concatenates each key's warm query plus ``rounds``
        measurements, so the query sequence — and therefore every
        simulated latency — is identical to the per-key calls this
        replaces, while the filter-probe prepass and the Python batch
        overhead are paid once instead of ``len(keys)`` times.  Each
        key's first sample (the warm-up) is still discarded.
        """
        if not keys:
            return []
        rounds = self.rounds
        per_key = rounds + 1
        self.counter.charge(per_key * len(keys))
        schedule: List[bytes] = []
        for key in keys:
            schedule.extend([key] * per_key)
        timed = self.service.get_many_timed(self.attacker_user, schedule)
        out: List[bool] = []
        for start in range(0, len(timed), per_key):
            total = sum(elapsed
                        for _, elapsed in timed[start + 1:start + per_key])
            out.append(total / rounds >= self.cutoff_us)
        return out

    def wait_for_eviction(self) -> None:
        """No-op: the fine-grained channel needs the cache *warm*."""


class IdealizedOracle(QueryOracle):
    """Classification via engine debug counters (never wrong, no waits)."""

    def __init__(self, service: KVService, attacker_user: int,
                 db: Optional[LSMTree] = None) -> None:
        super().__init__(service, attacker_user)
        self.db = db or service.db

    def classify(self, keys: Sequence[bytes]) -> List[bool]:
        """Exact filter decisions, one (accounted) query per key.

        Runs through the store's batched ``filters_pass_many`` — the
        counter still advances by one per key and the verdicts are
        exactly the per-key ``filters_pass`` loop's.
        """
        keys = list(keys)
        self.counter.charge(len(keys))
        return self.db.filters_pass_many(keys)

    def wait_for_eviction(self) -> None:
        """No-op: the idealized attack never waits (section 10.2.2)."""
