"""Preliminary learning phase (paper section 5.3.1).

The attacker issues many ``get()`` requests for random keys, builds the
response-time distribution, and derives the cutoff separating the fast
(memory-only, filter-negative) mode from the slow (I/O, filter-positive)
mode.  Nothing here uses ground truth: the cutoff comes from the
distribution's shape alone, exactly as an external attacker would compute
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import LearningError
from repro.common.histogram import Histogram, derive_cutoff
from repro.common.rng import make_rng
from repro.core.results import STAGE_LEARNING, QueryCounter
from repro.storage.background import BackgroundLoad
from repro.system.service import KVService

#: Histogram bucket width — the paper's Table 1 uses 5 us buckets.
BUCKET_WIDTH_US = 5.0
#: Overflow bucket start — the paper's Table 1 groups everything >= 25 us.
OVERFLOW_AT_US = 25.0
#: Bucket width for the fine-grained (cached-positive) distribution.
FINE_BUCKET_WIDTH_US = 0.25


@dataclass
class LearningResult:
    """Outcome of the preliminary phase.

    ``baseline_us`` is the network floor the attacker subtracts before
    analyzing the distribution: zero for a local attacker, approximately
    the minimum RTT for a remote one (threat model, section 4).  The
    ``cutoff_us`` is absolute (baseline already folded in).
    """

    cutoff_us: float
    histogram: Histogram
    samples: List[float]
    queries_used: int
    baseline_us: float = 0.0

    def positive_fraction(self) -> float:
        """Share of sampled queries classified slow by the derived cutoff."""
        if not self.samples:
            return 0.0
        slow = sum(1 for s in self.samples if s >= self.cutoff_us)
        return slow / len(self.samples)


def learn_cutoff(service: KVService, attacker_user: int, key_width: int,
                 num_samples: int = 10_000, seed: int = 0,
                 background: Optional[BackgroundLoad] = None,
                 churn_every: int = 256,
                 counter: Optional[QueryCounter] = None) -> LearningResult:
    """Run the learning phase and derive the negative/positive cutoff.

    ``churn_every`` injects background-load cache churn periodically so
    positive keys keep paying I/O during sampling (a fully warmed cache
    would collapse the distribution's slow mode and hide the signal).
    """
    if num_samples < 100:
        raise LearningError(
            f"at least 100 samples are needed to shape a distribution, "
            f"got {num_samples}"
        )
    rng = make_rng(seed, "learning")
    samples: List[float] = []
    if counter is not None:
        counter.stage = STAGE_LEARNING
    # Sampling runs in batches bounded by the churn period, so each batch
    # is one get_many_timed call (amortizing per-query Python overhead)
    # and cache churn still lands on exactly the same query indices as the
    # one-query-at-a-time loop did.  Key generation draws from the
    # learning RNG stream in the same order as before; the service-side
    # streams (cost jitter, device latency) are independent, so batching
    # does not shift any draw.
    if background is not None and churn_every < 1:
        raise LearningError(
            f"churn_every must be at least 1 with background load, "
            f"got {churn_every}"
        )
    position = 0
    while position < num_samples:
        batch_size = num_samples - position
        if background is not None:
            batch_size = min(churn_every, batch_size)
        keys = [rng.random_bytes(key_width) for _ in range(batch_size)]
        if counter is not None:
            counter.charge(batch_size)
        timed = service.get_many_timed(attacker_user, keys)
        samples.extend(elapsed for _, elapsed in timed)
        position += batch_size
        if background is not None and position % churn_every == 0:
            background.run_for(background.eviction_wait_us())
    # A remote attacker's observations are shifted by the network RTT
    # (section 4); when the whole distribution sits past the histogram
    # window, normalize by the observed floor (a robust low percentile)
    # before deriving the cutoff, then report the cutoff in absolute time.
    floor = sorted(samples)[max(0, len(samples) // 100 - 1)]
    baseline = floor if floor >= OVERFLOW_AT_US else 0.0
    shifted = [s - baseline for s in samples] if baseline else samples
    histogram = Histogram(BUCKET_WIDTH_US, OVERFLOW_AT_US)
    histogram.extend(shifted)
    cutoff = baseline + derive_cutoff(shifted, BUCKET_WIDTH_US, OVERFLOW_AT_US)
    return LearningResult(cutoff_us=cutoff, histogram=histogram,
                          samples=samples, queries_used=num_samples,
                          baseline_us=baseline)


def learn_fine_cutoff(service: KVService, attacker_user: int, key_width: int,
                      num_keys: int = 3_000, rounds: int = 12,
                      seed: int = 0,
                      counter: Optional[QueryCounter] = None
                      ) -> LearningResult:
    """Learning phase for the *fine-grained* attack (section 5.2 footnote).

    The paper's attack exploits the memory-vs-I/O gap and must wait for
    page-cache evictions between measurements.  Its section 5.2 footnote
    leaves a second channel to future work: "time differences between
    queries that read an in-memory SSTable residing in the OS page cache
    and those that do not, due to a filter miss".  That gap is tiny (a
    cached block read plus the in-block search), so single measurements
    drown in noise — but *per-key averages* over many back-to-back queries
    concentrate tightly, making the distribution of averages bimodal with
    a deep valley.

    This routine queries each sampled key once to warm the cache, then
    ``rounds`` more times, histograms the per-key averages at fine
    granularity, and derives the cached-positive/negative cutoff.  No
    eviction waits anywhere.
    """
    if num_keys < 100:
        raise LearningError(
            f"at least 100 sampled keys are needed, got {num_keys}"
        )
    if rounds < 2:
        raise LearningError("fine-grained averaging needs at least 2 rounds")
    rng = make_rng(seed, "fine-learning")
    if counter is not None:
        counter.stage = STAGE_LEARNING
    averages: List[float] = []
    for _ in range(num_keys):
        key = rng.random_bytes(key_width)
        if counter is not None:
            counter.charge(rounds + 1)
        # One warm query (pulls any covered block into the page cache)
        # plus ``rounds`` measurements, issued as a single batch; the warm
        # query's time is discarded exactly as the sequential loop did.
        timed = service.get_many_timed(attacker_user, [key] * (rounds + 1))
        total = sum(elapsed for _, elapsed in timed[1:])
        averages.append(total / rounds)
    histogram = Histogram(FINE_BUCKET_WIDTH_US, OVERFLOW_AT_US)
    histogram.extend(averages)
    cutoff = derive_cutoff(averages, FINE_BUCKET_WIDTH_US, OVERFLOW_AT_US)
    return LearningResult(cutoff_us=cutoff, histogram=histogram,
                          samples=averages,
                          queries_used=num_keys * (rounds + 1))
