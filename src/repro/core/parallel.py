"""Concurrent breadth-first attack driver over pooled wire connections.

The paper's section 9 scheduler exists so many candidate prefixes can be
probed *concurrently*: a remote attacker with N connections keeps them all
full, paying the per-round cache-eviction wait once for the whole breadth
of the search.  This module fans the existing attack machinery out across
a :class:`~repro.server.client.ConnectionPool` while keeping the merged
results identical to the serial in-process attack:

* **Timing-classified stages** (FindFPK, IdPrefix) shard each breadth-
  first batch across the pool and flag every shard ``FLAG_ORDERED``: the
  server's :class:`~repro.server.tcp.OrderedGate` executes the shards in
  shard order, so the one simulated timeline — clock charges, RNG draws,
  page-cache evolution — is *exactly* the serial batch's.  Wall-clock
  parallelism comes from overlapping the transport work (framing, socket
  I/O, response decoding) that a real network attacker pipelines.
* **Extension** (step 3) needs no ordering at all: probe outcomes are
  response *statuses*, pure functions of the key, so whole prefixes run
  concurrently on separate connections and chunked batch probes replace
  per-key round trips.  The merge applies the serial loop's dedupe in the
  serial loop's order, so the extracted key set is identical.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.core.extension import extend_prefix
from repro.core.learning import LearningResult, learn_cutoff
from repro.core.oracle import QueryOracle
from repro.core.results import AttackResult, ExtractedKey, PrefixCandidate
from repro.core.template import AttackConfig, PrefixSiphoningAttack
from repro.server.client import ConnectionPool, RemoteBackground
from repro.server.protocol import OrderToken
from repro.system.responses import Status


class ParallelTimingOracle(QueryOracle):
    """Timing classification fanned out across pooled connections.

    Observationally equivalent to a serial
    :class:`~repro.core.oracle.TimingOracle` over the same served store:
    same per-key simulated response times, same verdicts, same number of
    counted queries.  ``wait_us`` defaults to the server-reported
    full-cache displacement time, like the serial oracle's default.
    """

    def __init__(self, pool: ConnectionPool, attacker_user: int,
                 cutoff_us: float, rounds: int = 4,
                 wait_us: Optional[float] = None,
                 batch_limit: int = 1024) -> None:
        super().__init__(pool.primary, attacker_user)
        if cutoff_us <= 0:
            raise ConfigError(f"cutoff must be positive, got {cutoff_us}")
        if rounds < 1:
            raise ConfigError(f"rounds must be at least 1, got {rounds}")
        if batch_limit < 1:
            raise ConfigError(f"batch limit must be positive, got {batch_limit}")
        self.pool = pool
        self.cutoff_us = cutoff_us
        self.rounds = rounds
        #: Largest GET_MANY frame the driver issues.  Bounding frames is
        #: what creates pipelining: a breadth-first batch streams as a
        #: sequence of ordered frames, and with N connections the next
        #: frames are already decoded and waiting at the server's gate
        #: while the current one executes.  A serial connection instead
        #: leaves the server idle during every client turnaround.
        self.batch_limit = batch_limit
        if wait_us is None:
            wait_us = RemoteBackground(pool.primary).eviction_wait_us()
        self.wait_us = wait_us
        # Ordered-stream identity: unique per oracle so several runs
        # against one server never collide in the gate.  Randomness here
        # is *not* part of the simulation (no seeded stream is perturbed).
        self._nonce = int.from_bytes(os.urandom(8), "big")
        self._next_seq = 0
        self._seq_lock = threading.Lock()

    # ------------------------------------------------------------ breadth-first

    def classify(self, keys: Sequence[bytes]) -> List[bool]:
        """Sharded ``rounds``-query averages against the cutoff.

        Each round splits the batch into one contiguous shard per
        connection, dispatches them concurrently, and lets the server's
        ordered gate execute them in shard order — the serial batch's
        execution order.  The eviction wait happens once per round, for
        the entire breadth of the batch (section 9).
        """
        totals = [0.0] * len(keys)
        for round_index in range(self.rounds):
            self.counter.charge(len(keys))
            timed = self._round(keys)
            for i, (_, elapsed) in enumerate(timed):
                totals[i] += elapsed
            if round_index + 1 < self.rounds:
                self.wait_for_eviction()
        return [total / self.rounds >= self.cutoff_us for total in totals]

    def wait_for_eviction(self) -> None:
        """One between-iteration cache-churn wait, server-side."""
        self.pool.primary.wait(self.wait_us)

    def _round(self, keys: Sequence[bytes]) -> List:
        """One query per key, streamed as bounded ordered frames.

        Frame ``k`` goes out on connection ``k mod N``; the server's gate
        admits frames in sequence order, so execution replays the serial
        key order while up to ``N`` frames are in flight.
        """
        shards = self._shard(keys)
        connections = len(self.pool)
        if len(shards) == 1 or connections == 1:
            merged: List = []
            for shard in shards:
                merged.extend(self.pool.primary.get_many_timed(
                    self.attacker_user, shard))
            return merged
        with self._seq_lock:
            tokens = []
            for _ in shards:
                tokens.append(OrderToken(self._nonce, self._next_seq))
                self._next_seq += 1
        results: List = [None] * len(shards)
        errors: List = []

        def fetch(connection_index: int) -> None:
            client = self.pool.client(connection_index)
            try:
                for k in range(connection_index, len(shards), connections):
                    results[k] = client.get_many_timed(
                        self.attacker_user, shards[k], order=tokens[k])
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=fetch, args=(i,), daemon=True)
                   for i in range(min(connections, len(shards)))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        merged = []
        for shard_result in results:
            merged.extend(shard_result)
        return merged

    def _shard(self, keys: Sequence[bytes]) -> List[Sequence[bytes]]:
        """Contiguous frames in key order, each at most ``batch_limit``.

        Small batches still split across the pool (one frame per
        connection) so every classification round pipelines.
        """
        connections = len(self.pool)
        if not keys:
            return [[]]
        per_shard = (len(keys) + connections - 1) // connections
        per_shard = max(1, min(per_shard, self.batch_limit))
        return [keys[i:i + per_shard]
                for i in range(0, len(keys), per_shard)]

    # ------------------------------------------------------------------ probes

    def prober_many(self, connection_index: int):
        """Batch ``keys -> [Status]`` prober bound to one connection.

        Step-3 extension runs these concurrently without ordering: the
        status of a probe is a pure function of the key.
        """
        client = self.pool.client(connection_index)
        user = self.attacker_user
        counter = self.counter

        def probe_many(keys: Sequence[bytes]) -> List[Status]:
            counter.charge(len(keys))
            return [response.status
                    for response in client.get_many(user, keys)]

        return probe_many


class ParallelPrefixSiphoningAttack(PrefixSiphoningAttack):
    """The attack template with step 3 fanned out across the pool.

    Steps 1-2 already parallelize inside :class:`ParallelTimingOracle`;
    this subclass additionally runs each surviving prefix's suffix-space
    search on its own connection with chunked batch probes, then merges
    with the serial loop's dedupe-in-order semantics, so a seeded parallel
    run extracts exactly the serial run's keys.
    """

    def __init__(self, oracle: ParallelTimingOracle, strategy,
                 config: AttackConfig, chunk_size: int = 256) -> None:
        super().__init__(oracle, strategy, config)
        if chunk_size < 1:
            raise ConfigError(f"chunk size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size

    def _extend_all(self, kept: List[PrefixCandidate],
                    result: AttackResult) -> None:
        oracle: ParallelTimingOracle = self.oracle
        connections = len(oracle.pool)
        probers: "queue.Queue" = queue.Queue()
        for index in range(connections):
            probers.put(oracle.prober_many(index))
        extensions: List = [None] * len(kept)
        errors: List = []

        def extend_one(index: int, candidate: PrefixCandidate) -> None:
            probe_many = probers.get()
            try:
                constraint = self.strategy.hash_constraint_for(candidate)
                extensions[index] = extend_prefix(
                    oracle, candidate.prefix, self.config.key_width,
                    hash_constraint=constraint,
                    max_queries=self.config.max_extension_queries,
                    probe_many=probe_many, chunk_size=self.chunk_size,
                )
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append(exc)
            finally:
                probers.put(probe_many)

        # A fixed crew of worker threads drains the candidate list; each
        # holds one connection's prober at a time.
        work: "queue.Queue" = queue.Queue()
        for item in enumerate(kept):
            work.put(item)

        def worker() -> None:
            while True:
                try:
                    index, candidate = work.get_nowait()
                except queue.Empty:
                    return
                extend_one(index, candidate)

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(min(connections, max(1, len(kept))))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        # Deterministic merge: the serial loop's body, in the serial
        # loop's (longest-prefix-first) order.
        counter = oracle.counter
        found_keys: set = set()
        for candidate, extension in zip(kept, extensions):
            if extension.found and extension.key not in found_keys:
                found_keys.add(extension.key)
                result.extracted.append(ExtractedKey(
                    key=extension.key, prefix=candidate.prefix,
                    queries_spent=extension.queries_spent,
                ))
            else:
                result.wasted_queries += extension.queries_spent
            result.progress.append((counter.total, len(result.extracted)))


@dataclass
class ParallelAttackOutcome:
    """One remote attack run: the attack result plus driver metadata."""

    result: AttackResult
    learning: LearningResult
    connections: int
    wall_seconds: float


@dataclass
class FleetMemberOutcome:
    """One fleet member's attack, as its own service user."""

    user: int
    result: AttackResult
    wall_seconds: float


@dataclass
class FleetOutcome:
    """An attacker fleet run: per-member results plus fleet totals."""

    members: List[FleetMemberOutcome]
    wall_seconds: float

    @property
    def total_extracted(self) -> int:
        """Distinct keys extracted across the fleet."""
        keys = set()
        for member in self.members:
            keys.update(e.key for e in member.result.extracted)
        return len(keys)

    @property
    def total_queries(self) -> int:
        return sum(m.result.total_queries for m in self.members)


def run_attacker_fleet(dial, num_attackers: int, key_width: int,
                       filter_scheme, cutoff_us: float,
                       config: Optional[AttackConfig] = None,
                       seed: int = 0, rounds: int = 2,
                       wait_us: Optional[float] = None,
                       mode: str = "truncate",
                       chunk_size: int = 64, batch_limit: int = 64,
                       base_user: int = 666) -> FleetOutcome:
    """Concurrent independent attackers, each its own user and connection.

    The defense-bench adversary: ``num_attackers`` clients run the full
    three-step attack simultaneously against one served store, each under
    a distinct user id (``base_user + i``, defaulting to the canonical
    ATTACKER_USER) so per-client detector verdicts and per-user throttle
    escalation act on each member independently.  The learned cutoff is
    shared (learning is a quiet-server calibration; pass the value from
    :func:`~repro.core.learning.learn_cutoff`), and seeds differ per
    member so the fleet explores different candidate prefixes.

    ``dial`` is a zero-argument connection factory (e.g. a loopback
    transport's ``dial``); each member owns one connection for its
    lifetime, so fleet-wide concurrency is ``num_attackers`` connections.
    """
    from repro.core.surf_attack import SurfAttackStrategy

    if num_attackers < 1:
        raise ConfigError("fleet needs at least one attacker")
    started = time.perf_counter()
    members: List[Optional[FleetMemberOutcome]] = [None] * num_attackers
    errors: List[BaseException] = []

    def run_member(index: int) -> None:
        member_started = time.perf_counter()
        pool = ConnectionPool(dial, 1)
        try:
            oracle = ParallelTimingOracle(
                pool, base_user + index, cutoff_us=cutoff_us, rounds=rounds,
                wait_us=wait_us, batch_limit=batch_limit)
            strategy = SurfAttackStrategy(key_width, filter_scheme,
                                          mode=mode, seed=seed + index)
            attack = ParallelPrefixSiphoningAttack(
                oracle, strategy, config or AttackConfig(key_width=key_width),
                chunk_size=chunk_size)
            result = attack.run()
            members[index] = FleetMemberOutcome(
                user=base_user + index, result=result,
                wall_seconds=time.perf_counter() - member_started)
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            errors.append(exc)
        finally:
            pool.close()

    threads = [threading.Thread(target=run_member, args=(i,), daemon=True)
               for i in range(num_attackers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return FleetOutcome(members=[m for m in members if m is not None],
                        wall_seconds=time.perf_counter() - started)


def run_parallel_surf_attack(pool: ConnectionPool, attacker_user: int,
                             key_width: int, filter_scheme,
                             config: Optional[AttackConfig] = None,
                             seed: int = 0, rounds: int = 4,
                             learn_samples: int = 6_000,
                             wait_us: Optional[float] = None,
                             mode: str = "truncate",
                             chunk_size: int = 256,
                             batch_limit: int = 1024) -> ParallelAttackOutcome:
    """Full remote SuRF attack over a connection pool.

    Learning runs serially on the primary connection (it is a
    distribution-shaping phase, not a breadth-first one), then the
    three-step attack runs with sharded classification and fanned-out
    extension.  With the same seed, store, and parameters, the extracted
    key set equals the serial in-process attack's.
    """
    from repro.core.surf_attack import SurfAttackStrategy

    started = time.perf_counter()
    primary = pool.primary
    background = RemoteBackground(primary)
    learning = learn_cutoff(primary, attacker_user, key_width,
                            num_samples=learn_samples, seed=seed,
                            background=background)
    oracle = ParallelTimingOracle(pool, attacker_user,
                                  cutoff_us=learning.cutoff_us,
                                  rounds=rounds, wait_us=wait_us,
                                  batch_limit=batch_limit)
    strategy = SurfAttackStrategy(key_width, filter_scheme, mode=mode,
                                  seed=seed)
    attack = ParallelPrefixSiphoningAttack(
        oracle, strategy, config or AttackConfig(key_width=key_width),
        chunk_size=chunk_size)
    result = attack.run()
    return ParallelAttackOutcome(
        result=result, learning=learning, connections=len(pool),
        wall_seconds=time.perf_counter() - started,
    )
