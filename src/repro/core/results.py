"""Attack accounting and result types.

Every ``get()`` the attacker issues is attributed to a stage (learning,
find_fpk, id_prefix, extend) so the per-stage breakdown of the paper's
Table 2 — including wasted queries, those spent futilely extending a
misidentified prefix — falls out of the bookkeeping, and the progress
curves of Figures 3-8 are recorded as (queries, keys-extracted) points.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Stage names, in attack order.
STAGE_LEARNING = "learning"
STAGE_FIND_FPK = "find_fpk"
STAGE_ID_PREFIX = "id_prefix"
STAGE_EXTEND = "extend"


class QueryCounter:
    """Counts attacker queries, attributed to the currently active stage.

    Charges are locked: the parallel attack driver accounts probes from
    several connection threads into one counter.
    """

    def __init__(self) -> None:
        self.by_stage: Dict[str, int] = {}
        self.stage = STAGE_FIND_FPK
        self._lock = threading.Lock()

    def charge(self, queries: int = 1) -> None:
        """Record ``queries`` issued in the active stage."""
        with self._lock:
            self.by_stage[self.stage] = self.by_stage.get(self.stage, 0) + queries

    @property
    def total(self) -> int:
        """All queries across stages."""
        return sum(self.by_stage.values())


@dataclass(frozen=True)
class PrefixCandidate:
    """Step-2 output: a false-positive key and its identified prefix."""

    fp_key: bytes
    prefix: bytes
    #: The variant's stored hash bits implied by the FP (SuRF-Hash pruning).
    hash_value: Optional[int] = None


@dataclass(frozen=True)
class ExtractedKey:
    """Step-3 output: one fully disclosed stored key."""

    key: bytes
    prefix: bytes
    queries_spent: int


@dataclass
class AttackResult:
    """Complete outcome of one prefix-siphoning run."""

    extracted: List[ExtractedKey] = field(default_factory=list)
    prefixes_identified: List[PrefixCandidate] = field(default_factory=list)
    prefixes_discarded: int = 0
    wasted_queries: int = 0
    queries_by_stage: Dict[str, int] = field(default_factory=dict)
    #: (total queries so far, keys extracted so far) checkpoints.
    progress: List[Tuple[int, int]] = field(default_factory=list)
    sim_duration_us: float = 0.0
    #: Simulated time spent per stage (section 9 parallelization model).
    stage_durations_us: Dict[str, float] = field(default_factory=dict)

    @property
    def total_queries(self) -> int:
        """All attacker queries."""
        return sum(self.queries_by_stage.values())

    @property
    def num_extracted(self) -> int:
        """Fully disclosed keys."""
        return len(self.extracted)

    def queries_per_key(self) -> float:
        """Amortized attack cost (Figure 5's converging metric)."""
        if not self.extracted:
            return float("inf")
        return self.total_queries / len(self.extracted)

    def moving_queries_per_key(self) -> List[Tuple[int, float]]:
        """Moving average of queries per extracted key vs progress.

        The Y series of Figures 4, 7 and 8: at each progress checkpoint
        with at least one extraction, total queries so far divided by keys
        extracted so far.
        """
        out: List[Tuple[int, float]] = []
        for queries, keys in self.progress:
            if keys:
                out.append((queries, queries / keys))
        return out

    def parallel_duration_us(self, workers: int,
                             parallel_stages: Tuple[str, ...] = (
                                 STAGE_FIND_FPK,)) -> float:
        """Estimated duration with ``workers`` cores (paper section 9).

        The paper parallelizes step 1 over 16 cores with linear speedup
        and leaves the other steps single-threaded; this applies the same
        model to the recorded per-stage simulated durations.
        """
        total = 0.0
        for stage, duration in self.stage_durations_us.items():
            total += duration / workers if stage in parallel_stages else duration
        return total

    def stage_table(self) -> List[Dict[str, object]]:
        """Rows shaped like the paper's Table 2."""
        total = self.total_queries or 1
        rows = []
        for stage in (STAGE_FIND_FPK, STAGE_ID_PREFIX, STAGE_EXTEND):
            queries = self.queries_by_stage.get(stage, 0)
            rows.append({
                "stage": stage,
                "queries": queries,
                "percent": 100.0 * queries / total,
            })
        rows.append({
            "stage": "wasted",
            "queries": self.wasted_queries,
            "percent": 100.0 * self.wasted_queries / total,
        })
        return rows
