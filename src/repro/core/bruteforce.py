"""Brute-force key guessing — the baseline the paper compares against.

Randomly guesses full-width keys and watches for an authorization error
(the same membership signal step 3 uses).  On any realistically sized key
space this fails within any reasonable budget (section 10.2.2 runs it for
10x the attack's duration without a single hit); the benches use it to
anchor prefix siphoning's search-space reduction factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.system.responses import Status
from repro.system.service import KVService


@dataclass
class BruteForceResult:
    """Outcome of a brute-force run."""

    found: List[bytes] = field(default_factory=list)
    queries: int = 0

    @property
    def num_found(self) -> int:
        """Stored keys guessed."""
        return len(self.found)

    def queries_per_key(self) -> float:
        """Amortized cost (infinite when nothing was found)."""
        if not self.found:
            return float("inf")
        return self.queries / len(self.found)


def brute_force_attack(service: KVService, attacker_user: int,
                       key_width: int, max_queries: int,
                       seed: int = 0) -> BruteForceResult:
    """Guess random keys until the budget runs out."""
    if max_queries < 1:
        raise ConfigError("brute force needs a positive query budget")
    rng = make_rng(seed, "bruteforce")
    result = BruteForceResult()
    seen_hits = set()
    for _ in range(max_queries):
        key = rng.random_bytes(key_width)
        result.queries += 1
        status = service.get(attacker_user, key).status
        if status in (Status.UNAUTHORIZED, Status.OK) and key not in seen_hits:
            seen_hits.add(key)
            result.found.append(key)
    return result


def expected_bruteforce_queries_per_key(key_width: int, num_keys: int) -> float:
    """Closed-form expected guesses per stored key: |keyspace| / |D|."""
    if num_keys <= 0:
        raise ConfigError("dataset must be non-empty")
    return (256 ** key_width) / num_keys
