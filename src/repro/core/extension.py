"""Step 3: extending an identified prefix to a full stored key.

Enumerates every key of the target width that starts with the prefix,
probing each until the system answers UNAUTHORIZED (the key exists but the
attacker may not read it) or OK (the key exists and is world-readable) —
either way, a stored key is disclosed.

For SuRF-Hash, the false-positive key's (public) hash value prunes the
enumeration: any candidate whose hash bits differ from the FP's cannot be
the stored key, so it is skipped *without issuing a query* (paper section
6.2.2).  The hash of the fixed prefix is computed once and extended
incrementally per suffix, so pruning costs far less than querying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import AttackError
from repro.common.keys import suffix_space_size
from repro.core.oracle import QueryOracle
from repro.filters.hashing import SUFFIX_HASH_SEED, fnv1a_64_init, fnv1a_64_update
from repro.system.responses import Status


def _prober_for(oracle) -> "Callable[[bytes], Status]":
    """``oracle.prober()`` when offered, else the plain ``probe`` method.

    Range-attack adapters and test doubles only implement ``probe``; the
    fast path is an optimization, never a requirement.
    """
    factory = getattr(oracle, "prober", None)
    return factory() if factory is not None else oracle.probe


@dataclass(frozen=True)
class HashConstraint:
    """SuRF-Hash pruning data: required hash bits of the stored key."""

    num_bits: int
    value: int


@dataclass
class ExtensionResult:
    """Outcome of one prefix extension."""

    key: Optional[bytes]
    queries_spent: int
    candidates_considered: int
    exhausted: bool

    @property
    def found(self) -> bool:
        """Whether a stored key was disclosed."""
        return self.key is not None


def expected_extension_queries(prefix_len: int, key_width: int,
                               hash_bits: int = 0) -> int:
    """Worst-case probes to extend a prefix (the step-3 feasibility test).

    The suffix space divided by the SuRF-Hash pruning factor; the template
    discards prefixes whose cost exceeds its budget, the paper's "discard
    every prefix of length < 40 bits" rule generalized to query cost.
    """
    space = suffix_space_size(prefix_len, key_width)
    return max(1, space >> hash_bits)


def extend_prefix_variable(oracle: QueryOracle, prefix: bytes,
                           max_suffix_len: int,
                           charset: bytes = bytes(range(256)),
                           max_queries: Optional[int] = None,
                           find_all: bool = False) -> "VariableExtensionResult":
    """Step 3 for variable-length keys (object names, row keys).

    Fixed-width extension enumerates one suffix space; variable-length
    targets have no single width, so this enumerates suffixes of length
    0..``max_suffix_len`` over ``charset``, shortest first (shorter names
    are likelier and cheaper).  Restricting the charset encodes format
    knowledge — the paper's section 8 observes the attacker can always
    fold distribution knowledge into the search.

    With ``find_all`` the enumeration continues past hits, harvesting
    every stored key under the prefix within the budget.
    """
    if max_suffix_len < 0:
        raise AttackError("max_suffix_len must be non-negative")
    if not charset:
        raise AttackError("charset must be non-empty")
    alphabet = sorted(set(charset))
    found: list = []
    queries = 0
    considered = 0
    probe = _prober_for(oracle)

    def candidates():
        yield prefix
        for length in range(1, max_suffix_len + 1):
            for suffix in _suffixes(alphabet, length):
                yield prefix + suffix

    for candidate in candidates():
        considered += 1
        if max_queries is not None and queries >= max_queries:
            return VariableExtensionResult(found, queries, considered,
                                           exhausted=False)
        queries += 1
        status = probe(candidate)
        if status in (Status.UNAUTHORIZED, Status.OK):
            found.append(candidate)
            if not find_all:
                return VariableExtensionResult(found, queries, considered,
                                               exhausted=False)
    return VariableExtensionResult(found, queries, considered, exhausted=True)


def _suffixes(alphabet, length):
    if length == 0:
        yield b""
        return
    for head in alphabet:
        for tail in _suffixes(alphabet, length - 1):
            yield bytes([head]) + tail


@dataclass
class VariableExtensionResult:
    """Outcome of a variable-length prefix extension."""

    keys: list
    queries_spent: int
    candidates_considered: int
    exhausted: bool

    @property
    def found(self) -> bool:
        """Whether at least one stored key was disclosed."""
        return bool(self.keys)


def extend_prefix(oracle: QueryOracle, prefix: bytes, key_width: int,
                  hash_constraint: Optional[HashConstraint] = None,
                  max_queries: Optional[int] = None,
                  probe=None, probe_many=None,
                  chunk_size: int = 256) -> ExtensionResult:
    """Brute-force the suffix space of ``prefix`` (paper step 3).

    Stops at the first UNAUTHORIZED/OK response.  ``max_queries`` bounds
    the probes actually issued (pruned candidates are free).  ``probe``
    may supply a pre-built fast prober (``oracle.prober()``) so a caller
    extending many prefixes hoists the per-query overhead once; it must be
    observationally equivalent to ``oracle.probe``.

    ``probe_many`` (a ``keys -> [Status]`` batch prober) switches to
    chunked probing: candidates are issued ``chunk_size`` at a time, with
    early stop at the first chunk containing a positive.  Remote attackers
    use this — a per-key wire round trip would dominate the suffix search —
    and it discloses the *same key* as the serial scan (statuses are pure
    functions of the key), at the cost of up to ``chunk_size - 1`` extra
    probes past the hit.

    The serial scan itself buffers ``chunk_size`` candidates at a time so
    an oracle offering ``prober_for`` can precompute the buffer's filter
    verdicts in one pure batched pass; unlike the ``probe_many`` path this
    changes nothing observable — probes are still consumed one at a time
    with early exit, so query counts and simulated time are exactly the
    unbuffered scan's.
    """
    if len(prefix) > key_width:
        raise AttackError(
            f"prefix of {len(prefix)} bytes exceeds key width {key_width}"
        )
    if probe_many is not None:
        return _extend_prefix_chunked(prefix, key_width, hash_constraint,
                                      max_queries, probe_many, chunk_size)
    if probe is None:
        probe = _prober_for(oracle)
    planner = getattr(oracle, "prober_for", None)
    suffix_len = key_width - len(prefix)
    space = suffix_space_size(len(prefix), key_width)
    mask = None
    prefix_state = None
    target_bits = 0
    if hash_constraint is not None and hash_constraint.num_bits:
        mask = (1 << hash_constraint.num_bits) - 1
        prefix_state = fnv1a_64_update(fnv1a_64_init(SUFFIX_HASH_SEED), prefix)
        target_bits = hash_constraint.value

    queries = 0
    considered = 0
    positive = (Status.UNAUTHORIZED, Status.OK)
    # Candidates are buffered so the oracle can precompute the buffer's
    # filter verdicts in one pure batched pass (``prober_for``); each
    # flush then probes serially with early exit, so queries issued,
    # responses, and simulated time are exactly the one-at-a-time scan's.
    # All buffered candidates lie within the query budget by construction.
    pending: list = []

    def flush() -> Optional[bytes]:
        nonlocal queries
        probe_fn = planner(pending) if planner is not None else probe
        for candidate in pending:
            queries += 1
            if probe_fn(candidate) in positive:
                return candidate
        return None

    for value in range(space):
        suffix = value.to_bytes(suffix_len, "big") if suffix_len else b""
        considered += 1
        if mask is not None:
            if fnv1a_64_update(prefix_state, suffix) & mask != target_bits:
                continue  # pruned for free: hash bits cannot match
        if max_queries is not None and queries + len(pending) >= max_queries:
            hit = flush() if pending else None
            return ExtensionResult(hit, queries, considered, exhausted=False)
        pending.append(prefix + suffix)
        if len(pending) >= chunk_size:
            hit = flush()
            pending = []
            if hit is not None:
                return ExtensionResult(hit, queries, considered,
                                       exhausted=False)
    if pending:
        hit = flush()
        if hit is not None:
            return ExtensionResult(hit, queries, considered, exhausted=False)
    return ExtensionResult(None, queries, considered, exhausted=True)


def _extend_prefix_chunked(prefix: bytes, key_width: int,
                           hash_constraint: Optional[HashConstraint],
                           max_queries: Optional[int],
                           probe_many, chunk_size: int) -> ExtensionResult:
    """Chunked suffix-space scan (see ``extend_prefix``'s ``probe_many``).

    Enumerates candidates in exactly the serial order, so the first
    positive found is the same key the one-probe-at-a-time scan returns.
    """
    if chunk_size < 1:
        raise AttackError(f"chunk size must be positive, got {chunk_size}")
    suffix_len = key_width - len(prefix)
    space = suffix_space_size(len(prefix), key_width)
    mask = None
    prefix_state = None
    target_bits = 0
    if hash_constraint is not None and hash_constraint.num_bits:
        mask = (1 << hash_constraint.num_bits) - 1
        prefix_state = fnv1a_64_update(fnv1a_64_init(SUFFIX_HASH_SEED), prefix)
        target_bits = hash_constraint.value

    queries = 0
    considered = 0
    positive = (Status.UNAUTHORIZED, Status.OK)
    chunk: list = []

    def issue() -> Optional[bytes]:
        nonlocal queries
        statuses = probe_many(chunk)
        queries += len(chunk)
        for candidate, status in zip(chunk, statuses):
            if status in positive:
                return candidate
        return None

    for value in range(space):
        suffix = value.to_bytes(suffix_len, "big") if suffix_len else b""
        considered += 1
        if mask is not None:
            if fnv1a_64_update(prefix_state, suffix) & mask != target_bits:
                continue  # pruned for free: hash bits cannot match
        if max_queries is not None and queries + len(chunk) >= max_queries:
            hit = issue() if chunk else None
            if hit is not None:
                return ExtensionResult(hit, queries, considered,
                                       exhausted=False)
            return ExtensionResult(None, queries, considered, exhausted=False)
        chunk.append(prefix + suffix)
        if len(chunk) >= chunk_size:
            hit = issue()
            chunk = []
            if hit is not None:
                return ExtensionResult(hit, queries, considered,
                                       exhausted=False)
    if chunk:
        hit = issue()
        if hit is not None:
            return ExtensionResult(hit, queries, considered, exhausted=False)
    return ExtensionResult(None, queries, considered, exhausted=True)
