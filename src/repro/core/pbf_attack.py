"""Prefix siphoning instantiation against the prefix Bloom filter (section 7).

The PBF stores every key *and* its ``l``-byte prefix in one Bloom filter,
so an ``l``-byte point query for a true prefix of a stored key passes —
a "prefix false positive".  FindFPK therefore has two parts:

1. **Detect l** (once per attack): for each plausible prefix length,
   measure the fraction of random keys of that length that classify
   positive; only at the true ``l`` do prefix false positives add a bump
   above the Bloom FPR baseline (section 7.2.1).
2. **Guess prefixes**: classify random ``l``-byte keys; the positives are
   a mix of prefix false positives (extendable to real keys) and ordinary
   hash-collision false positives (extension will be wasted on them —
   the cost the paper's Figure 8 quantifies against SuRF).

``IdPrefix`` is the identity: an ``l``-byte false positive *is* the
identified prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.core.extension import HashConstraint
from repro.core.oracle import QueryOracle
from repro.core.results import PrefixCandidate


@dataclass
class PrefixLengthScan:
    """Outcome of the l-detection scan: positive fraction per length."""

    fractions: Dict[int, float]
    detected: int

    def as_rows(self) -> List[dict]:
        """Report rows, ascending length."""
        return [
            {"length_bytes": length, "positive_fraction": fraction,
             "detected": length == self.detected}
            for length, fraction in sorted(self.fractions.items())
        ]


class PbfAttackStrategy:
    """FindFPK (+ trivial IdPrefix) for LSM-trees filtered by a PBF."""

    def __init__(self, key_width: int, prefix_len: Optional[int] = None,
                 seed: int = 0) -> None:
        """``prefix_len`` may be pre-seeded when already detected (the scan
        runs once per attack even across concurrent rounds, section 7.2.1).
        """
        if key_width <= 0:
            raise ConfigError(f"key width must be positive, got {key_width}")
        self.key_width = key_width
        self.prefix_len = prefix_len
        self._rng = make_rng(seed, "pbf-attack")

    # -------------------------------------------------------------- detection

    def detect_prefix_length(self, oracle: QueryOracle,
                             min_len: int = 2,
                             max_len: Optional[int] = None,
                             samples_per_length: int = 4_000
                             ) -> PrefixLengthScan:
        """Find l by scanning query lengths for the FP-rate bump."""
        max_len = max_len or self.key_width - 1
        if not 1 <= min_len <= max_len:
            raise ConfigError(
                f"invalid scan range [{min_len}, {max_len}] for width "
                f"{self.key_width}"
            )
        fractions: Dict[int, float] = {}
        for length in range(min_len, max_len + 1):
            batch = [self._rng.random_bytes(length)
                     for _ in range(samples_per_length)]
            verdicts = oracle.classify(batch)
            fractions[length] = sum(verdicts) / len(verdicts)
            oracle.wait_for_eviction()
        detected = max(fractions, key=fractions.get)
        self.prefix_len = detected
        return PrefixLengthScan(fractions=fractions, detected=detected)

    # ----------------------------------------------------------------- step 1

    def generate_candidates(self, count: int) -> List[bytes]:
        """Uniformly random l-byte keys (l must be known or detected)."""
        if self.prefix_len is None:
            raise ConfigError(
                "prefix length unknown: run detect_prefix_length() first"
            )
        return [self._rng.random_bytes(self.prefix_len) for _ in range(count)]

    def find_false_positives(self, oracle: QueryOracle,
                             candidates: Sequence[bytes]) -> List[bytes]:
        """l-byte keys the oracle classifies positive."""
        verdicts = oracle.classify(candidates)
        return [key for key, positive in zip(candidates, verdicts) if positive]

    # ----------------------------------------------------------------- step 2

    def identify_prefixes(self, oracle: QueryOracle,
                          fp_keys: Sequence[bytes]) -> List[PrefixCandidate]:
        """Trivial for the PBF: the false positive *is* the prefix."""
        return [PrefixCandidate(fp_key=fp, prefix=fp) for fp in fp_keys]

    # ----------------------------------------------------------- step 3 hints

    def hash_constraint_for(self, candidate: PrefixCandidate
                            ) -> Optional[HashConstraint]:
        """No pruning is possible for Bloom-based filters."""
        return None
