"""The prefix siphoning attack template (paper section 5.3).

Orchestrates the three steps against any strategy/oracle pair:

1. **FindFPK** — classify a batch of random candidates, keep the positives.
2. **IdPrefix** — identify each false positive's shared prefix.
3. **Extend** — discard prefixes whose suffix search is infeasible, dedupe
   the rest, and brute-force each surviving suffix space, cheapest first
   (the paper prioritizes the longest prefixes — same ordering).

Every query is accounted per stage; extension queries that exhaust a
suffix space without disclosing a key are recorded as *wasted* (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import AttackError, ConfigError
from repro.core.extension import expected_extension_queries, extend_prefix
from repro.core.oracle import QueryOracle
from repro.core.results import (
    STAGE_EXTEND,
    STAGE_FIND_FPK,
    STAGE_ID_PREFIX,
    AttackResult,
    ExtractedKey,
    PrefixCandidate,
)


@dataclass
class AttackConfig:
    """Knobs of one attack run (defaults match DESIGN.md's scaled setup)."""

    key_width: int = 5
    num_candidates: int = 100_000
    #: Step-3 feasibility budget per prefix, in probes; the scaled analogue
    #: of the paper's "discard every prefix of length < 40 bits".
    max_extension_queries: int = 1 << 16
    #: Whether to run step 3 at all (False reproduces attacks on systems
    #: whose responses do not distinguish non-present from unauthorized).
    extend: bool = True
    dedupe_prefixes: bool = True

    def __post_init__(self) -> None:
        if self.key_width <= 0:
            raise ConfigError("key width must be positive")
        if self.num_candidates < 1:
            raise ConfigError("need at least one candidate")
        if self.max_extension_queries < 1:
            raise ConfigError("extension budget must be positive")


class PrefixSiphoningAttack:
    """One full attack run: steps 1-3 with accounting and progress curve."""

    def __init__(self, oracle: QueryOracle, strategy,
                 config: AttackConfig) -> None:
        self.oracle = oracle
        self.strategy = strategy
        self.config = config
        if strategy.key_width > config.key_width and not hasattr(
            strategy, "prefix_len"
        ):
            raise AttackError(
                "strategy key width exceeds the attack's target key width"
            )

    def _sim_now_us(self) -> float:
        """The simulated clock behind the oracle's service.

        In-process services expose it as ``db.clock``; wire transports
        report it on request (``sim_now_us()``); bare test doubles get a
        constant (durations then read zero, which is honest: no simulated
        clock exists to measure).
        """
        service = self.oracle.service
        db = getattr(service, "db", None)
        if db is not None:
            return db.clock.now_us
        reader = getattr(service, "sim_now_us", None)
        if callable(reader):
            return reader()
        return 0.0

    def run(self) -> AttackResult:
        """Execute the attack and return its full accounting."""
        start_us = self._sim_now_us()
        counter = self.oracle.counter
        result = AttackResult()

        # Step 1: find false-positive keys.
        counter.stage = STAGE_FIND_FPK
        stage_started = start_us
        candidates = self.strategy.generate_candidates(self.config.num_candidates)
        fp_keys = self.strategy.find_false_positives(self.oracle, candidates)
        result.progress.append((counter.total, 0))
        stage_ended = self._sim_now_us()
        result.stage_durations_us[STAGE_FIND_FPK] = stage_ended - stage_started

        # Step 2: identify shared prefixes.
        counter.stage = STAGE_ID_PREFIX
        stage_started = stage_ended
        identified = self.strategy.identify_prefixes(self.oracle, fp_keys)
        result.prefixes_identified = list(identified)
        result.progress.append((counter.total, 0))
        stage_ended = self._sim_now_us()
        result.stage_durations_us[STAGE_ID_PREFIX] = stage_ended - stage_started

        # Step 3: keep feasible prefixes, dedupe, extend cheapest-first.
        counter.stage = STAGE_EXTEND
        stage_started = stage_ended
        kept = self._select_for_extension(identified, result)
        if self.config.extend:
            self._extend_all(kept, result)
        stage_ended = self._sim_now_us()
        result.stage_durations_us[STAGE_EXTEND] = stage_ended - stage_started

        result.queries_by_stage = dict(counter.by_stage)
        result.progress.append((counter.total, len(result.extracted)))
        result.sim_duration_us = stage_ended - start_us
        self.oracle.release_plan()  # drop the last primed prober's pin
        return result

    # ------------------------------------------------------------------ steps

    def _select_for_extension(self, identified: List[PrefixCandidate],
                              result: AttackResult) -> List[PrefixCandidate]:
        kept: List[PrefixCandidate] = []
        seen: set = set()
        for candidate in identified:
            constraint = self.strategy.hash_constraint_for(candidate)
            hash_bits = constraint.num_bits if constraint else 0
            cost = expected_extension_queries(len(candidate.prefix),
                                              self.config.key_width, hash_bits)
            if cost > self.config.max_extension_queries:
                result.prefixes_discarded += 1
                continue
            dedupe_key = (candidate.prefix,
                          constraint.value if constraint else None)
            if self.config.dedupe_prefixes and dedupe_key in seen:
                continue
            seen.add(dedupe_key)
            kept.append(candidate)
        # Cheapest searches first == longest prefixes first (section 5.3.2:
        # "prioritize extending the longest ones").
        kept.sort(key=lambda c: len(c.prefix), reverse=True)
        return kept

    def _extend_all(self, kept: List[PrefixCandidate],
                    result: AttackResult) -> None:
        counter = self.oracle.counter
        found_keys: set = set()
        # One fast prober shared across every suffix-space search: the
        # per-request closure construction happens once here instead of
        # once per prefix (and the per-probe overhead once per batch
        # instead of once per query).
        probe = self.oracle.prober()
        for candidate in kept:
            constraint = self.strategy.hash_constraint_for(candidate)
            extension = extend_prefix(
                self.oracle, candidate.prefix, self.config.key_width,
                hash_constraint=constraint,
                max_queries=self.config.max_extension_queries,
                probe=probe,
            )
            if extension.found and extension.key not in found_keys:
                found_keys.add(extension.key)
                result.extracted.append(ExtractedKey(
                    key=extension.key, prefix=candidate.prefix,
                    queries_spent=extension.queries_spent,
                ))
            else:
                # Exhausted (misidentified prefix / plain Bloom FP) or a
                # duplicate disclosure: the probes bought nothing.
                result.wasted_queries += extension.queries_spent
            result.progress.append((counter.total, len(result.extracted)))
