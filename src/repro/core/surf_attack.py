"""Prefix siphoning instantiation against SuRF (paper section 6).

``FindFPK`` is pure random guessing: a few hundred to a few thousand
uniform keys hit a false positive because SuRF's FPR is small but
non-negligible (characteristic C3(2)).

``IdPrefix`` exploits SuRF's structure — any key carrying only a *proper*
prefix of the stored pruned prefix is negative — in two interchangeable
modes (section 6.2.2):

* **truncate** — remove trailing symbols one at a time; the shortest
  positive truncation is the shared prefix.  Needs variable-length query
  support (our service has it).
* **replace** — for fixed-length systems: change one symbol at a time from
  the back; the first position whose change turns the key negative ends
  the prefix.

Against SuRF-Hash, modifying the key changes its hash, so probes are
restricted to modified keys whose (public) hash collides with the FP key's;
positions with no colliding symbol are skipped, which can only shorten —
never overextend — the identified prefix.

Both modes run breadth-first across all FP keys: each outer step issues one
batch of probes covering every unresolved key, with cache-eviction waits
only between batches (section 9).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import AttackError, ConfigError
from repro.core.extension import HashConstraint
from repro.core.oracle import QueryOracle
from repro.core.results import PrefixCandidate
from repro.common.rng import make_rng
from repro.filters.hashing import suffix_hash_bits
from repro.filters.surf.suffix import SuffixScheme, SurfVariant


class SurfAttackStrategy:
    """FindFPK + IdPrefix for LSM-trees filtered by SuRF."""

    def __init__(self, key_width: int,
                 filter_scheme: SuffixScheme,
                 mode: str = "truncate",
                 confirm_probes: int = 1,
                 candidate_prefix: bytes = b"",
                 seed: int = 0) -> None:
        """``filter_scheme`` is the attacker's knowledge of the deployed
        SuRF variant (variant + suffix bits); the paper assumes it is
        public (section 6.2.2).  ``confirm_probes`` probes per position in
        replace mode harden against accidental positives from unrelated
        stored prefixes.  ``candidate_prefix`` pins the start of every
        FindFPK guess — for targets whose key format is partially known,
        like a database storage engine where keys begin with a public
        table id (paper section 3, "explicitly secret keys").
        """
        if key_width <= 0:
            raise ConfigError(f"key width must be positive, got {key_width}")
        if mode not in ("truncate", "replace"):
            raise ConfigError(f"unknown IdPrefix mode {mode!r}")
        if confirm_probes < 1:
            raise ConfigError("confirm_probes must be at least 1")
        if len(candidate_prefix) >= key_width:
            raise ConfigError("candidate prefix must be shorter than the key")
        if filter_scheme.variant is SurfVariant.HASH and mode == "truncate":
            # Truncation changes the key's hash, so truncated probes are
            # rejected regardless of the prefix; replacement with
            # hash-colliding symbols is the only workable mode (6.2.2).
            mode = "replace"
        self.key_width = key_width
        self.scheme = filter_scheme
        self.mode = mode
        self.confirm_probes = confirm_probes
        self.candidate_prefix = candidate_prefix
        self._rng = make_rng(seed, "surf-attack")

    # ------------------------------------------------------------ step 1 (C2)

    def generate_candidates(self, count: int) -> List[bytes]:
        """Uniformly random keys — FindFPK's guess stream.

        Random over the full width, or over the unknown tail when a
        ``candidate_prefix`` pins the format's public part.
        """
        tail = self.key_width - len(self.candidate_prefix)
        return [self.candidate_prefix + self._rng.random_bytes(tail)
                for _ in range(count)]

    def find_false_positives(self, oracle: QueryOracle,
                             candidates: Sequence[bytes]) -> List[bytes]:
        """Keys the oracle classifies positive (overwhelmingly FPs)."""
        verdicts = oracle.classify(candidates)
        return [key for key, positive in zip(candidates, verdicts) if positive]

    # ------------------------------------------------------------ step 2 (C2)

    def identify_prefixes(self, oracle: QueryOracle,
                          fp_keys: Sequence[bytes]) -> List[PrefixCandidate]:
        """Run IdPrefix breadth-first over all FP keys."""
        if self.mode == "truncate":
            prefixes = self._identify_by_truncation(oracle, fp_keys)
        else:
            prefixes = self._identify_by_replacement(oracle, fp_keys)
        return [
            PrefixCandidate(fp_key=fp, prefix=prefix,
                            hash_value=self._hash_value(fp))
            for fp, prefix in prefixes
        ]

    def _identify_by_truncation(self, oracle: QueryOracle,
                                fp_keys: Sequence[bytes]
                                ) -> List[Tuple[bytes, bytes]]:
        pending: Dict[int, bytes] = dict(enumerate(fp_keys))
        resolved: Dict[int, bytes] = {}
        for length in range(self.key_width - 1, 0, -1):
            if not pending:
                break
            indices = list(pending)
            batch = [pending[i][:length] for i in indices]
            verdicts = oracle.classify(batch)
            for i, positive in zip(indices, verdicts):
                if not positive:
                    # First negative truncation: the one-longer prefix is
                    # the shared prefix k'.
                    resolved[i] = pending.pop(i)[: length + 1]
            oracle.wait_for_eviction()
        for i, fp in pending.items():
            # Positive all the way down: only the first symbol is certain.
            resolved[i] = fp[:1]
        return [(fp_keys[i], resolved[i]) for i in sorted(resolved)]

    def _identify_by_replacement(self, oracle: QueryOracle,
                                 fp_keys: Sequence[bytes]
                                 ) -> List[Tuple[bytes, bytes]]:
        pending: Dict[int, bytes] = dict(enumerate(fp_keys))
        resolved: Dict[int, bytes] = {}
        for position in range(self.key_width - 1, -1, -1):
            if not pending:
                break
            probes: List[bytes] = []
            spans: List[Tuple[int, int]] = []  # (fp index, probe count)
            for i in list(pending):
                candidates = self._replacement_probes(pending[i], position)
                if not candidates:
                    continue  # no hash-colliding symbol: position untestable
                spans.append((i, len(candidates)))
                probes.extend(candidates)
            if not probes:
                continue
            verdicts = oracle.classify(probes)
            cursor = 0
            for i, count in spans:
                slice_verdicts = verdicts[cursor : cursor + count]
                cursor += count
                if not all(slice_verdicts):
                    # Changing this symbol flipped the filter: the symbol
                    # is part of the shared prefix, which ends here.
                    resolved[i] = pending.pop(i)[: position + 1]
            oracle.wait_for_eviction()
        for i, fp in pending.items():
            resolved[i] = fp[:1]
        return [(fp_keys[i], resolved[i]) for i in sorted(resolved)]

    def _replacement_probes(self, fp_key: bytes, position: int) -> List[bytes]:
        original = fp_key[position]
        out: List[bytes] = []
        if self.scheme.variant is SurfVariant.HASH:
            target = self._hash_value(fp_key)
            for value in range(256):
                if value == original:
                    continue
                probe = fp_key[:position] + bytes([value]) + fp_key[position + 1:]
                if suffix_hash_bits(probe, self.scheme.num_bits) == target:
                    out.append(probe)
                    if len(out) == self.confirm_probes:
                        break
            if not out:
                out = self._paired_hash_probes(fp_key, position, target)
            return out
        # Non-hash variants: any differing symbols work; spread the probes.
        step = max(1, 256 // (self.confirm_probes + 1))
        for k in range(1, self.confirm_probes + 1):
            value = (original + k * step) % 256
            if value == original:
                continue
            out.append(fp_key[:position] + bytes([value]) + fp_key[position + 1:])
        return out

    def _paired_hash_probes(self, fp_key: bytes, position: int,
                            target: int) -> List[bytes]:
        """Two-byte modifications when no single symbol hash-collides.

        With b-bit hashes and 8-bit symbols, a fraction (1 - 2**-b)**255 of
        positions (~37% at b=8) admit no single-symbol collision, leaving
        the position untestable and collapsing the identified prefix.  The
        fix stays within the paper's framework: also vary the last symbol —
        already established as suffix-side by the right-to-left scan — so
        the probe still isolates ``position``: if ``position`` is inside
        the shared prefix the path diverges there regardless of the last
        symbol; if it is suffix-side, the probe reaches the same leaf and
        the enforced hash collision makes it positive.
        """
        partner = self.key_width - 1
        if position >= partner:
            return []
        out: List[bytes] = []
        for value in range(1, 256):
            new_byte = (fp_key[position] + value) % 256
            base = (fp_key[:position] + bytes([new_byte])
                    + fp_key[position + 1:])
            for last in range(256):
                if last == fp_key[partner]:
                    continue
                probe = base[:partner] + bytes([last])
                if suffix_hash_bits(probe, self.scheme.num_bits) == target:
                    out.append(probe)
                    break
            if len(out) == self.confirm_probes:
                break
        return out

    # ----------------------------------------------------------- step 3 hints

    def hash_constraint_for(self, candidate: PrefixCandidate
                            ) -> Optional[HashConstraint]:
        """Step-3 pruning constraint (SuRF-Hash only)."""
        if self.scheme.variant is not SurfVariant.HASH:
            return None
        if candidate.hash_value is None:
            raise AttackError("hash-variant candidate is missing its hash value")
        return HashConstraint(self.scheme.num_bits, candidate.hash_value)

    def _hash_value(self, fp_key: bytes) -> Optional[int]:
        if self.scheme.variant is not SurfVariant.HASH:
            return None
        return suffix_hash_bits(fp_key, self.scheme.num_bits)
