"""Simulated block storage device with an NVMe-like latency model.

Files are byte strings held in memory; reads charge the simulated clock
according to a seeded latency model.  The model is deliberately simple —
a lognormal per-read service time plus a per-block transfer cost — because
the attack only needs the qualitative property that a read from "secondary
storage" costs tens of microseconds with noise, clearly separable from
DRAM-scale work yet overlapping enough that single measurements are noisy
(which is why the attack averages four queries per key, section 9).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import (
    ConfigError,
    FileNotFoundInStoreError,
    ReadOutOfBoundsError,
)
from repro.common.rng import SeededRng, make_rng

#: Default block size, matching common SSD/page-cache granularity.
DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class DeviceModel:
    """Latency parameters of the simulated device (all microseconds).

    The defaults are tuned so a single-block read lands mostly in the
    18-28 us range, reproducing the paper's observation that false-positive
    queries (one SSTable block read) respond in 25-35 us end-to-end while
    memory-only queries take 5-10 us.
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    #: lognormal location of the per-read service time.
    read_latency_mu: float = 3.0  # exp(3.0) ~ 20 us median
    #: lognormal scale (noise) of the per-read service time.
    read_latency_sigma: float = 0.12
    #: additional cost per block transferred beyond the first.
    per_block_transfer_us: float = 1.5
    #: flat cost of a write (writes are off the timing-attack path).
    write_latency_us: float = 30.0

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigError(f"block size must be positive, got {self.block_size}")
        if self.read_latency_sigma < 0:
            raise ConfigError("read latency sigma must be non-negative")


@dataclass
class DeviceStats:
    """Operation counters, used by tests and the idealized-attack oracle."""

    reads: int = 0
    blocks_read: int = 0
    writes: int = 0
    bytes_written: int = 0


class StorageDevice:
    """In-memory file store that charges simulated I/O latency.

    The device is shared by the LSM-tree (SSTables, WAL) and read through
    the :class:`~repro.storage.page_cache.PageCache`; direct reads model
    cache misses.

    Threading: a reentrant lock serializes every operation, so concurrent
    callers (the wire server's workers, engine installers) see atomic
    file mutations and consistent stats/latency-RNG state.  Determinism
    still requires a deterministic *operation order* — the parallel build
    engine guarantees it by keeping all device effects on one thread in
    canonical order (see DESIGN.md section 9); the lock makes any other
    concurrent use safe rather than silently corrupting.
    """

    def __init__(self, clock, model: Optional[DeviceModel] = None,
                 rng: Optional[SeededRng] = None) -> None:
        self.clock = clock
        self.model = model or DeviceModel()
        self._rng = rng or make_rng(None, "device")
        self._files: Dict[str, bytes] = {}
        self.stats = DeviceStats()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ files

    def create_file(self, path: str, data: bytes) -> None:
        """Write a complete immutable file (SSTables are write-once)."""
        with self._lock:
            self._files[path] = bytes(data)
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
            self.clock.charge(self.model.write_latency_us)

    def append(self, path: str, data: bytes) -> None:
        """Append to a file, creating it if missing (WAL traffic)."""
        with self._lock:
            self._files[path] = self._files.get(path, b"") + bytes(data)
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
            self.clock.charge(self.model.write_latency_us)

    def delete_file(self, path: str) -> None:
        """Remove a file (compaction garbage collection)."""
        with self._lock:
            self._files.pop(path, None)

    def rename(self, src: str, dst: str) -> None:
        """Atomically move ``src`` over ``dst`` (POSIX rename semantics).

        The primitive behind write-new-then-swap manifest replacement: the
        destination either keeps its old content or has the complete new
        content, never a mix — a crash can prevent the rename but cannot
        tear it.
        """
        with self._lock:
            self._files[dst] = self._file(src)
            del self._files[src]
            self.stats.writes += 1
            self.clock.charge(self.model.write_latency_us)

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists on the device."""
        return path in self._files

    def file_size(self, path: str) -> int:
        """Size of ``path`` in bytes."""
        return len(self._file(path))

    def list_files(self):
        """Sorted list of file paths (manifest recovery, tests)."""
        return sorted(self._files)

    # ------------------------------------------------------------------ reads

    def read(self, path: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``, charging I/O latency.

        The charge covers every block the byte range touches: one lognormal
        service time for the read plus a linear transfer cost per extra
        block.
        """
        with self._lock:
            data = self._file(path)
            if offset < 0 or length < 0 or offset + length > len(data):
                raise ReadOutOfBoundsError(
                    f"read [{offset}, {offset + length}) out of bounds for "
                    f"{path!r} of size {len(data)}"
                )
            blocks = self._blocks_spanned(offset, length)
            self.stats.reads += 1
            self.stats.blocks_read += blocks
            self.clock.charge(self._read_cost_us(blocks))
            return data[offset : offset + length]

    def read_block(self, path: str, block_index: int) -> bytes:
        """Read one whole block (page-cache fill granularity)."""
        with self._lock:
            data = self._file(path)
            start = block_index * self.model.block_size
            if start >= len(data) or block_index < 0:
                raise ReadOutOfBoundsError(
                    f"block {block_index} out of bounds for {path!r} "
                    f"of size {len(data)}"
                )
            self.stats.reads += 1
            self.stats.blocks_read += 1
            self.clock.charge(self._read_cost_us(1))
            return data[start : start + self.model.block_size]

    def num_blocks(self, path: str) -> int:
        """Number of blocks in ``path`` (last one may be partial)."""
        size = len(self._file(path))
        return (size + self.model.block_size - 1) // self.model.block_size

    # ---------------------------------------------------------------- helpers

    def _file(self, path: str) -> bytes:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInStoreError(f"no such file: {path!r}") from None

    def _blocks_spanned(self, offset: int, length: int) -> int:
        if length == 0:
            return 1
        first = offset // self.model.block_size
        last = (offset + length - 1) // self.model.block_size
        return last - first + 1

    def _read_cost_us(self, blocks: int) -> float:
        service = self._rng.lognormvariate(
            self.model.read_latency_mu, self.model.read_latency_sigma
        )
        return service + self.model.per_block_transfer_us * (blocks - 1)
