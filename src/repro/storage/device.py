"""Simulated block storage device with an NVMe-like latency model.

Files are byte strings held in memory; reads charge the simulated clock
according to a seeded latency model.  The model is deliberately simple —
a lognormal per-read service time plus a per-block transfer cost — because
the attack only needs the qualitative property that a read from "secondary
storage" costs tens of microseconds with noise, clearly separable from
DRAM-scale work yet overlapping enough that single measurements are noisy
(which is why the attack averages four queries per key, section 9).

Two MVCC-era extensions (DESIGN.md section 12):

* **File generations** — every path carries a monotonically increasing
  generation number, bumped on create/append/rename/delete.  Caches key
  their entries on ``(path, generation, ...)`` so a recycled path can
  never serve a stale block.
* **Mapped regions** — :meth:`map_file` returns a :class:`MappedRegion`,
  the simulated analogue of ``mmap``: readers take zero-copy
  ``memoryview`` slices of the file image, pin the region while a view
  is live, and the unmap is deferred until the last pin drops (the POSIX
  read-after-unlink guarantee: deleting the path does not invalidate an
  existing mapping).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import (
    ConfigError,
    FileNotFoundInStoreError,
    ReadOutOfBoundsError,
    StorageError,
)
from repro.common.rng import SeededRng, make_rng

#: Default block size, matching common SSD/page-cache granularity.
DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class DeviceModel:
    """Latency parameters of the simulated device (all microseconds).

    The defaults are tuned so a single-block read lands mostly in the
    18-28 us range, reproducing the paper's observation that false-positive
    queries (one SSTable block read) respond in 25-35 us end-to-end while
    memory-only queries take 5-10 us.
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    #: lognormal location of the per-read service time.
    read_latency_mu: float = 3.0  # exp(3.0) ~ 20 us median
    #: lognormal scale (noise) of the per-read service time.
    read_latency_sigma: float = 0.12
    #: additional cost per block transferred beyond the first.
    per_block_transfer_us: float = 1.5
    #: flat cost of a write (writes are off the timing-attack path).
    write_latency_us: float = 30.0

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigError(f"block size must be positive, got {self.block_size}")
        if self.read_latency_sigma < 0:
            raise ConfigError("read latency sigma must be non-negative")


@dataclass
class DeviceStats:
    """Operation counters, used by tests and the idealized-attack oracle."""

    reads: int = 0
    blocks_read: int = 0
    writes: int = 0
    bytes_written: int = 0


class MappedRegion:
    """A simulated ``mmap`` of one file: zero-copy views plus pin lifetime.

    The region holds a reference to the file image as mapped (so later
    rewrites of the path never show through — real mmaps of replaced
    files keep the old pages) and hands out ``memoryview`` slices.
    Readers :meth:`pin` the region for the duration of any borrowed
    view; :meth:`close` with ``strict=True`` raises while pins are
    outstanding (the simulated analogue of ``BufferError`` on exporting
    a buffer that is still borrowed, or a Windows strict file close),
    while :meth:`mark_doomed` defers the unmap to the last unpin.
    """

    __slots__ = ("path", "generation", "_data", "_pins", "_doomed",
                 "_closed", "_lock")

    def __init__(self, path: str, generation: int, data: bytes) -> None:
        self.path = path
        self.generation = generation
        self._data = data
        self._pins = 0
        self._doomed = False
        self._closed = False
        self._lock = threading.Lock()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pins(self) -> int:
        return self._pins

    def view(self, offset: int, length: int) -> memoryview:
        """Borrow a zero-copy slice of the mapped file."""
        if self._closed:
            raise StorageError(f"mapped region for {self.path!r} is unmapped")
        if offset < 0 or length < 0 or offset + length > len(self._data):
            raise ReadOutOfBoundsError(
                f"view [{offset}, {offset + length}) out of bounds for "
                f"mapping of {self.path!r} ({len(self._data)} bytes)")
        return memoryview(self._data)[offset:offset + length]

    def __len__(self) -> int:
        return len(self._data)

    def pin(self) -> None:
        """Declare a live borrow; the region will not unmap under it."""
        with self._lock:
            if self._closed:
                raise StorageError(
                    f"pin of unmapped region for {self.path!r}")
            self._pins += 1

    def unpin(self) -> None:
        """Release one borrow; unmaps now if doomed and this was the last."""
        with self._lock:
            if self._pins <= 0:
                raise StorageError(
                    f"unpin of unpinned region for {self.path!r}")
            self._pins -= 1
            if self._doomed and self._pins == 0:
                self._unmap()

    def mark_doomed(self) -> None:
        """Schedule the unmap for the moment the last pin drops."""
        with self._lock:
            self._doomed = True
            if self._pins == 0:
                self._unmap()

    def close(self, strict: bool = True) -> None:
        """Unmap now (``strict``) or as soon as the last reader unpins.

        ``strict=True`` models platforms where tearing down a mapping
        with borrowed buffers is an error (Windows-style strict close /
        CPython ``BufferError``): it raises if any pin is outstanding.
        """
        with self._lock:
            if self._closed:
                return
            if self._pins:
                if strict:
                    raise StorageError(
                        f"cannot unmap {self.path!r}: "
                        f"{self._pins} reader(s) still pinned")
                self._doomed = True
                return
            self._unmap()

    def _unmap(self) -> None:
        """Drop the file image (lock held by caller)."""
        self._closed = True
        self._data = b""


class StorageDevice:
    """In-memory file store that charges simulated I/O latency.

    The device is shared by the LSM-tree (SSTables, WAL) and read through
    the :class:`~repro.storage.page_cache.PageCache`; direct reads model
    cache misses.

    Threading: a reentrant lock serializes every operation, so concurrent
    callers (the wire server's workers, engine installers) see atomic
    file mutations and consistent stats/latency-RNG state.  Determinism
    still requires a deterministic *operation order* — the parallel build
    engine guarantees it by keeping all device effects on one thread in
    canonical order (see DESIGN.md section 9); the lock makes any other
    concurrent use safe rather than silently corrupting.
    """

    def __init__(self, clock, model: Optional[DeviceModel] = None,
                 rng: Optional[SeededRng] = None) -> None:
        self.clock = clock
        self.model = model or DeviceModel()
        self._rng = rng or make_rng(None, "device")
        self._files: Dict[str, bytes] = {}
        #: path -> generation; bumped on every mutation of the path so
        #: caches can key on version-scoped file identity.
        self._generations: Dict[str, int] = {}
        #: path -> live MappedRegion (at most one per path at a time).
        self._mappings: Dict[str, MappedRegion] = {}
        self.stats = DeviceStats()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ files

    def _bump_generation(self, path: str) -> None:
        self._generations[path] = self._generations.get(path, 0) + 1

    def file_generation(self, path: str) -> int:
        """Current generation of ``path`` (0 if never written).

        Lock-free: a single dict read is atomic under the GIL, and
        generations only move forward — the hottest cache paths call
        this once per block read, so the lock would be pure overhead.
        """
        return self._generations.get(path, 0)

    def create_file(self, path: str, data: bytes) -> None:
        """Write a complete immutable file (SSTables are write-once)."""
        with self._lock:
            self._files[path] = bytes(data)
            self._bump_generation(path)
            self._mappings.pop(path, None)
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
            self.clock.charge(self.model.write_latency_us)

    def append(self, path: str, data: bytes) -> None:
        """Append to a file, creating it if missing (WAL traffic)."""
        with self._lock:
            self._files[path] = self._files.get(path, b"") + bytes(data)
            self._bump_generation(path)
            self.stats.writes += 1
            self.stats.bytes_written += len(data)
            self.clock.charge(self.model.write_latency_us)

    def delete_file(self, path: str) -> None:
        """Remove a file (compaction garbage collection).

        A live mapping of the path survives the unlink (POSIX
        semantics): readers holding the region keep reading the old
        image until its owner unmaps it.
        """
        with self._lock:
            if self._files.pop(path, None) is not None:
                self._bump_generation(path)
            self._mappings.pop(path, None)

    def rename(self, src: str, dst: str) -> None:
        """Atomically move ``src`` over ``dst`` (POSIX rename semantics).

        The primitive behind write-new-then-swap manifest replacement: the
        destination either keeps its old content or has the complete new
        content, never a mix — a crash can prevent the rename but cannot
        tear it.
        """
        with self._lock:
            self._files[dst] = self._file(src)
            del self._files[src]
            self._bump_generation(src)
            self._bump_generation(dst)
            self._mappings.pop(src, None)
            self._mappings.pop(dst, None)
            self.stats.writes += 1
            self.clock.charge(self.model.write_latency_us)

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists on the device."""
        return path in self._files

    def file_size(self, path: str) -> int:
        """Size of ``path`` in bytes."""
        return len(self._file(path))

    def list_files(self):
        """Sorted list of file paths (manifest recovery, tests)."""
        return sorted(self._files)

    # --------------------------------------------------------------- mappings

    def map_file(self, path: str) -> MappedRegion:
        """Map ``path`` (simulated ``mmap``); one shared region per path.

        Mapping charges nothing: establishing page-table entries is not
        an I/O in the latency model (faulting pages in is what the read
        methods charge for).
        """
        with self._lock:
            region = self._mappings.get(path)
            if region is not None and not region.closed:
                return region
            region = MappedRegion(path, self._generations.get(path, 0),
                                  self._file(path))
            self._mappings[path] = region
            return region

    def mapping_for(self, path: str) -> Optional[MappedRegion]:
        """The live mapping of ``path``, if any (tests, fallbacks)."""
        with self._lock:
            region = self._mappings.get(path)
            if region is not None and region.closed:
                return None
            return region

    # ------------------------------------------------------------------ reads

    def read(self, path: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``, charging I/O latency.

        The charge covers every block the byte range touches: one lognormal
        service time for the read plus a linear transfer cost per extra
        block.
        """
        return bytes(self.read_view(path, offset, length))

    def read_view(self, path: str, offset: int, length: int) -> memoryview:
        """Zero-copy :meth:`read`: same charge, stats, and RNG draw.

        The returned view aliases the immutable file image; callers must
        not mutate it (and cannot: the backing object is ``bytes``).
        """
        with self._lock:
            data = self._readable(path)
            if offset < 0 or length < 0 or offset + length > len(data):
                raise ReadOutOfBoundsError(
                    f"read [{offset}, {offset + length}) out of bounds for "
                    f"{path!r} of size {len(data)}"
                )
            blocks = self._blocks_spanned(offset, length)
            self.stats.reads += 1
            self.stats.blocks_read += blocks
            self.clock.charge(self._read_cost_us(blocks))
            return memoryview(data)[offset : offset + length]

    def read_block(self, path: str, block_index: int) -> bytes:
        """Read one whole block (page-cache fill granularity)."""
        return bytes(self.read_block_view(path, block_index))

    def read_block_view(self, path: str, block_index: int) -> memoryview:
        """Zero-copy :meth:`read_block`: same charge, stats, RNG draw."""
        with self._lock:
            data = self._readable(path)
            start = block_index * self.model.block_size
            if start >= len(data) or block_index < 0:
                raise ReadOutOfBoundsError(
                    f"block {block_index} out of bounds for {path!r} "
                    f"of size {len(data)}"
                )
            self.stats.reads += 1
            self.stats.blocks_read += 1
            self.clock.charge(self._read_cost_us(1))
            return memoryview(data)[start : start + self.model.block_size]

    def num_blocks(self, path: str) -> int:
        """Number of blocks in ``path`` (last one may be partial)."""
        size = len(self._readable(path))
        return (size + self.model.block_size - 1) // self.model.block_size

    # ------------------------------------------------------------------ views

    def reader_view(self, clock, rng: SeededRng) -> "DeviceView":
        """A read-only view charging ``clock`` and drawing from ``rng``.

        Snapshots read through one of these so their I/O timing comes
        from their own deterministic streams instead of perturbing the
        live store's.
        """
        return DeviceView(self, clock, rng, mutable=False)

    def silent_view(self) -> "DeviceView":
        """A mutable view whose charges and draws hit throwaway streams.

        Background compaction works through a silent view: it shares the
        real file namespace (and generation counters) but none of its
        I/O perturbs the serving store's clock, stats, or latency RNG —
        background work is free in simulated time by design (DESIGN.md
        section 12).
        """
        from repro.storage.clock import SimClock
        return DeviceView(self, SimClock(), make_rng(0, "silent-device"),
                          mutable=True)

    # ---------------------------------------------------------------- helpers

    def _file(self, path: str) -> bytes:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInStoreError(f"no such file: {path!r}") from None

    def _readable(self, path: str) -> bytes:
        """File image for reading: falls back to a live mapping.

        Models read-after-unlink: a deleted path whose mapping is still
        held keeps serving the mapped image (refcounted inode).
        """
        data = self._files.get(path)
        if data is not None:
            return data
        region = self._mappings.get(path)
        if region is not None and not region.closed:
            return region._data
        raise FileNotFoundInStoreError(f"no such file: {path!r}")

    def _blocks_spanned(self, offset: int, length: int) -> int:
        if length == 0:
            return 1
        first = offset // self.model.block_size
        last = (offset + length - 1) // self.model.block_size
        return last - first + 1

    def _read_cost_us(self, blocks: int) -> float:
        service = self._rng.lognormvariate(
            self.model.read_latency_mu, self.model.read_latency_sigma
        )
        return service + self.model.per_block_transfer_us * (blocks - 1)


class DeviceView:
    """A device facade that redirects timing effects to private streams.

    Shares the parent device's files, lock, generations, and mappings —
    the *state* is one store — but charges its own clock, draws latency
    from its own RNG, and counts into its own stats.  Two flavors:

    * ``reader_view`` (``mutable=False``): snapshot reads; mutation
      methods raise.
    * ``silent_view`` (``mutable=True``): background compaction; its
      writes mutate the shared namespace but charge a throwaway clock.
    """

    def __init__(self, parent: StorageDevice, clock, rng: SeededRng,
                 mutable: bool) -> None:
        self._parent = parent
        self.clock = clock
        self.model = parent.model
        self._rng = rng
        self._mutable = mutable
        self.stats = DeviceStats()
        self._lock = parent._lock

    # The shared-state helpers delegate to the parent under its lock.

    @property
    def _files(self) -> Dict[str, bytes]:
        return self._parent._files

    @property
    def _generations(self) -> Dict[str, int]:
        return self._parent._generations

    @property
    def _mappings(self) -> Dict[str, MappedRegion]:
        return self._parent._mappings

    def file_generation(self, path: str) -> int:
        return self._parent.file_generation(path)

    def exists(self, path: str) -> bool:
        return self._parent.exists(path)

    def file_size(self, path: str) -> int:
        return self._parent.file_size(path)

    def list_files(self):
        return self._parent.list_files()

    def num_blocks(self, path: str) -> int:
        return self._parent.num_blocks(path)

    def map_file(self, path: str) -> MappedRegion:
        return self._parent.map_file(path)

    def mapping_for(self, path: str) -> Optional[MappedRegion]:
        return self._parent.mapping_for(path)

    # Reads: parent data, private timing.

    read = StorageDevice.read
    read_view = StorageDevice.read_view
    read_block = StorageDevice.read_block
    read_block_view = StorageDevice.read_block_view
    _readable = StorageDevice._readable
    _file = StorageDevice._file
    _blocks_spanned = StorageDevice._blocks_spanned
    _read_cost_us = StorageDevice._read_cost_us

    # Mutations: allowed only on silent views; they go through the
    # parent's bookkeeping but charge this view's clock/stats.

    def _require_mutable(self) -> None:
        if not self._mutable:
            raise StorageError("read-only device view cannot mutate files")

    def _bump_generation(self, path: str) -> None:
        self._parent._bump_generation(path)

    create_file_impl = StorageDevice.create_file
    append_impl = StorageDevice.append
    rename_impl = StorageDevice.rename

    def create_file(self, path: str, data: bytes) -> None:
        self._require_mutable()
        self.create_file_impl(path, data)

    def append(self, path: str, data: bytes) -> None:
        self._require_mutable()
        self.append_impl(path, data)

    def rename(self, src: str, dst: str) -> None:
        self._require_mutable()
        self.rename_impl(src, dst)

    def delete_file(self, path: str) -> None:
        self._require_mutable()
        self._parent.delete_file(path)

    def reader_view(self, clock, rng: SeededRng) -> "DeviceView":
        return self._parent.reader_view(clock, rng)

    def silent_view(self) -> "DeviceView":
        return self._parent.silent_view()
