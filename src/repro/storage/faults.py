"""Deterministic fault injection for the simulated storage device.

A :class:`FaultyStorageDevice` behaves exactly like a
:class:`~repro.storage.device.StorageDevice` until its seeded
:class:`FaultPlan` says otherwise.  Three fault families are modelled,
matching what real LSM stores must survive (RocksDB's fault-injection
test suite covers the same triad):

* **crashes** — the plan names a mutation index; when the device's Nth
  mutating operation (create/append/rename/delete) arrives, only a
  *strict prefix* of that write's payload reaches the file (torn-write
  semantics) and :class:`~repro.common.errors.SimulatedCrashError` is
  raised.  Every later operation fails the same way until
  :meth:`FaultyStorageDevice.revive` — the simulated process restart —
  after which recovery code may reopen whatever survived on "disk";
* **bit flips** — :meth:`FaultyStorageDevice.flip_bit` (and the seeded
  :meth:`flip_random_bit`) silently corrupt stored bytes, exercising the
  checksum paths in the WAL, manifest and SSTable blocks;
* **transient read errors** — chosen read indices (explicit or sampled
  at a seeded rate) raise :class:`~repro.common.errors.TransientIOError`;
  the same read succeeds when retried, so recovery retry loops can be
  tested deterministically.

Everything is driven by the plan's seed: the same plan over the same
workload produces the same torn prefix lengths, the same flipped bits and
the same failing reads, which is what lets the crash-torture suite replay
*every* crash point of a workload and assert exact recovery outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.common.errors import (
    ConfigError,
    SimulatedCrashError,
    TransientIOError,
)
from repro.common.rng import make_rng
from repro.storage.device import DeviceModel, StorageDevice


@dataclass
class FaultPlan:
    """Declarative, seeded description of the faults to inject.

    ``crash_at_op`` counts *mutating* operations (``create_file``,
    ``append``, ``rename``, ``delete_file``) from device construction,
    zero-based; the operation with that index crashes.  Renames and
    deletes are atomic — a crash scheduled on one simply prevents it —
    while creates and appends keep a strict prefix of the payload being
    written, so the crashing write is never fully durable (the boundary
    between acknowledged and lost writes stays exact).
    """

    seed: int = 0
    #: Mutation index at which to crash (``None`` = never).
    crash_at_op: Optional[int] = None
    #: Keep a seeded strict prefix of the crashing write (torn write);
    #: when False the crashing write leaves no trace at all.
    torn_writes: bool = True
    #: Read indices (zero-based, counted across ``read``/``read_block``)
    #: that fail with :class:`TransientIOError` on first issue.
    transient_read_ops: FrozenSet[int] = field(default_factory=frozenset)
    #: Additionally fail each read with this seeded probability ...
    transient_read_rate: float = 0.0
    #: ... up to this many rate-sampled failures in total.
    max_transient_errors: int = 8
    #: When non-empty, only reads of paths starting with one of these
    #: prefixes are eligible to fail (e.g. ``("sst/",)`` to model a bad
    #: region of the disk while metadata stays readable).
    transient_path_prefixes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.crash_at_op is not None and self.crash_at_op < 0:
            raise ConfigError("crash_at_op must be non-negative")
        if not 0.0 <= self.transient_read_rate <= 1.0:
            raise ConfigError("transient_read_rate must be in [0, 1]")
        if self.max_transient_errors < 0:
            raise ConfigError("max_transient_errors must be non-negative")
        self.transient_read_ops = frozenset(self.transient_read_ops)


@dataclass
class FaultStats:
    """What the fault layer has done so far (assertable in tests)."""

    mutations: int = 0
    reads_attempted: int = 0
    transient_errors: int = 0
    bits_flipped: int = 0
    #: Mutation index that crashed (None until the crash fires).
    crash_op: Optional[int] = None
    #: Path the crashing mutation targeted.
    crash_path: Optional[str] = None
    #: Payload bytes of the crashing write that survived (torn prefix).
    crash_surviving_bytes: Optional[int] = None


class FaultyStorageDevice(StorageDevice):
    """A :class:`StorageDevice` whose failures follow a seeded plan.

    Drop-in compatible: shares the clock/latency model, so a faultless
    plan is observationally identical to the plain device.  After a crash
    fires, every further operation (reads included — the "process" is
    dead) raises :class:`SimulatedCrashError` until :meth:`revive`.
    """

    def __init__(self, clock, model: Optional[DeviceModel] = None,
                 rng=None, plan: Optional[FaultPlan] = None) -> None:
        super().__init__(clock, model=model, rng=rng)
        self.plan = plan or FaultPlan()
        self.fault_stats = FaultStats()
        self._fault_rng = make_rng(self.plan.seed, "faults")
        self._crashed = False

    # ------------------------------------------------------------- crash state

    @property
    def crashed(self) -> bool:
        """Whether the simulated process is currently dead."""
        return self._crashed

    def revive(self) -> None:
        """Restart the simulated process; on-device state is kept as-is.

        The consumed crash point is cleared so recovery's own writes do
        not immediately re-crash; schedule a new one with
        :meth:`schedule_crash` to test repeated failures.
        """
        self._crashed = False
        if self.plan.crash_at_op is not None \
                and self.plan.crash_at_op <= self.fault_stats.mutations:
            self.plan.crash_at_op = None

    def schedule_crash(self, after_mutations: int = 0,
                       torn: Optional[bool] = None) -> None:
        """Arm a crash ``after_mutations`` mutations from now."""
        if after_mutations < 0:
            raise ConfigError("after_mutations must be non-negative")
        self.plan.crash_at_op = self.fault_stats.mutations + after_mutations
        if torn is not None:
            self.plan.torn_writes = torn

    def _check_alive(self) -> None:
        if self._crashed:
            raise SimulatedCrashError(
                "operation on crashed device (revive() to recover)")

    def _mutation_gate(self, path: str, payload_len: int) -> Optional[int]:
        """Count one mutation; crash if the plan says so.

        Returns the number of payload bytes that should survive the
        crashing write (``None`` means no crash — proceed normally).
        The caller applies the torn prefix *then* raises.
        """
        self._check_alive()
        index = self.fault_stats.mutations
        self.fault_stats.mutations += 1
        if self.plan.crash_at_op is None or index != self.plan.crash_at_op:
            return None
        self._crashed = True
        surviving = 0
        if self.plan.torn_writes and payload_len > 0:
            # Strict prefix: the crashing write must never be fully
            # durable, keeping the acknowledged/lost boundary exact.
            surviving = self._fault_rng.randrange(payload_len)
        self.fault_stats.crash_op = index
        self.fault_stats.crash_path = path
        self.fault_stats.crash_surviving_bytes = surviving
        return surviving

    def _crash(self, path: str) -> "SimulatedCrashError":
        return SimulatedCrashError(
            f"simulated crash at mutation {self.fault_stats.crash_op} "
            f"({path!r})")

    # -------------------------------------------------------------- mutations

    def create_file(self, path: str, data: bytes) -> None:
        # The device lock spans gate + operation so the fault counters
        # and the mutation they describe stay atomic under concurrency
        # (the lock is reentrant; super() re-acquires it harmlessly).
        with self._lock:
            surviving = self._mutation_gate(path, len(data))
            if surviving is None:
                super().create_file(path, data)
                return
            if surviving:
                self._files[path] = bytes(data[:surviving])
                self._bump_generation(path)
        raise self._crash(path)

    def append(self, path: str, data: bytes) -> None:
        with self._lock:
            surviving = self._mutation_gate(path, len(data))
            if surviving is None:
                super().append(path, data)
                return
            if surviving:
                self._files[path] = self._files.get(path, b"") \
                    + bytes(data[:surviving])
                self._bump_generation(path)
        raise self._crash(path)

    def rename(self, src: str, dst: str) -> None:
        # Atomic: a crash here prevents the rename entirely.
        with self._lock:
            if self._mutation_gate(src, 0) is not None:
                raise self._crash(src)
            super().rename(src, dst)

    def delete_file(self, path: str) -> None:
        # Atomic: a crash here leaves the file in place.
        with self._lock:
            if self._mutation_gate(path, 0) is not None:
                raise self._crash(path)
            super().delete_file(path)

    # ------------------------------------------------------------------ reads

    def _read_gate(self, path: str) -> None:
        self._check_alive()
        index = self.fault_stats.reads_attempted
        self.fault_stats.reads_attempted += 1
        prefixes = self.plan.transient_path_prefixes
        if prefixes and not any(path.startswith(p) for p in prefixes):
            return
        if index in self.plan.transient_read_ops:
            self.fault_stats.transient_errors += 1
            raise TransientIOError(f"injected transient failure on read {index}")
        if (self.plan.transient_read_rate > 0.0
                and self.fault_stats.transient_errors
                < self.plan.max_transient_errors
                and self._fault_rng.random() < self.plan.transient_read_rate):
            self.fault_stats.transient_errors += 1
            raise TransientIOError(
                f"injected transient failure on read {index} (sampled)")

    # The ``_view`` methods are the read core (``read``/``read_block``
    # wrap them, and the page cache calls them directly on the zero-copy
    # path), so gating here covers every read exactly once.

    def read_view(self, path: str, offset: int, length: int) -> memoryview:
        with self._lock:
            self._read_gate(path)
            return super().read_view(path, offset, length)

    def read_block_view(self, path: str, block_index: int) -> memoryview:
        with self._lock:
            self._read_gate(path)
            return super().read_block_view(path, block_index)

    # ------------------------------------------------------------- corruption

    def flip_bit(self, path: str, byte_index: int, bit: int = 0) -> None:
        """Flip one stored bit in place (media corruption injection)."""
        data = bytearray(self._file(path))
        if not 0 <= byte_index < len(data):
            raise ConfigError(
                f"byte {byte_index} out of range for {path!r} "
                f"of {len(data)} bytes")
        if not 0 <= bit < 8:
            raise ConfigError("bit index must be in [0, 8)")
        data[byte_index] ^= 1 << bit
        self._files[path] = bytes(data)
        self._bump_generation(path)
        self.fault_stats.bits_flipped += 1

    def flip_random_bit(self, path: str) -> int:
        """Flip a seeded random bit of ``path``; returns the byte index."""
        size = len(self._file(path))
        if size == 0:
            raise ConfigError(f"cannot corrupt empty file {path!r}")
        byte_index = self._fault_rng.randrange(size)
        self.flip_bit(path, byte_index, self._fault_rng.randrange(8))
        return byte_index

    def flip_bits(self, path: str, positions: Iterable[int]) -> None:
        """Flip bit 0 of each byte position in ``positions``."""
        for byte_index in positions:
            self.flip_bit(path, byte_index)
