"""Simulated microsecond clock.

The paper's attack measures microsecond-level differences in query response
times (negative keys ~5-10 us served from memory, false positives ~25-35 us
due to SSD I/O).  Wall-clock timing in Python cannot resolve that reliably,
so the entire reproduction runs on simulated time: every component on the
query path *charges* the clock for the work it models, and a "response time"
is simply the simulated time elapsed between request start and end.

This is the substitution documented in DESIGN.md section 2: the attack only
depends on the shape of the latency distribution, which the cost models
preserve, not on real silicon.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.common.errors import ConfigError


class SimClock:
    """Monotonic simulated clock with microsecond resolution.

    Time only moves when a component calls :meth:`charge` (or
    :meth:`advance_to`); there is no background tick.  This makes every
    experiment deterministic and lets the attack's "wait for page-cache
    eviction" step advance simulated hours in zero wall-clock time.
    """

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ConfigError(f"clock cannot start at negative time {start_us}")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    def charge(self, duration_us: float) -> None:
        """Advance the clock by ``duration_us`` of modelled work."""
        if duration_us < 0:
            raise ConfigError(f"cannot charge negative time {duration_us}")
        self._now_us += duration_us

    def advance_to(self, deadline_us: float) -> None:
        """Jump forward to an absolute time (no-op if already past it)."""
        if deadline_us > self._now_us:
            self._now_us = deadline_us

    @contextmanager
    def measure(self) -> Iterator["StopwatchHandle"]:
        """Context manager yielding a handle whose ``elapsed_us`` is the
        simulated duration of the enclosed block — the attacker's stopwatch.
        """
        handle = StopwatchHandle(self)
        yield handle
        handle.stop()


class StopwatchHandle:
    """Start/stop pair over a :class:`SimClock` (see ``SimClock.measure``)."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now_us
        self._end: float = -1.0

    def stop(self) -> None:
        """Freeze the elapsed time at the current simulated instant."""
        if self._end < 0:
            self._end = self._clock.now_us

    @property
    def elapsed_us(self) -> float:
        """Simulated microseconds between construction and stop (or now)."""
        end = self._end if self._end >= 0 else self._clock.now_us
        return end - self._start
