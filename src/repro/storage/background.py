"""Background legitimate-load generator.

The paper's experiments run 32 threads of legitimate ``get()`` traffic (50%
present keys, 50% non-present) against the store while the attack executes
(section 10.1).  That load matters to the attack for exactly one reason: its
I/O churns the page cache, so an SSTable block pulled in by a false-positive
query is evicted again if the attacker waits between iterations (section 9).

Rather than simulate thousands of interleaved queries per attack iteration,
this generator models the load's *effect*: given a wait duration, it inserts
into the page cache the number of foreign pages the legitimate load would
have faulted in during that time, and advances the simulated clock by the
wait.  The I/O rate is configurable; the default displaces a 64 MiB cache
comfortably within the paper's 20-second wait.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.rng import SeededRng, make_rng
from repro.storage.page_cache import PageCache


@dataclass(frozen=True)
class LoadModel:
    """Intensity of the legitimate background traffic.

    ``miss_ios_per_second`` is the rate of page-cache *misses* the load
    causes; each miss faults one foreign block into the cache.
    """

    miss_ios_per_second: float = 4000.0

    def __post_init__(self) -> None:
        if self.miss_ios_per_second <= 0:
            raise ConfigError("background load rate must be positive")


class BackgroundLoad:
    """Churns a :class:`PageCache` to emulate a loaded production system."""

    def __init__(self, cache: PageCache, model: LoadModel = LoadModel(),
                 rng: SeededRng = None) -> None:
        self.cache = cache
        self.model = model
        self._rng = rng or make_rng(None, "background")
        self._next_tag = 0
        self.total_foreign_pages = 0

    def run_for(self, duration_us: float) -> int:
        """Advance the clock by ``duration_us`` of legitimate traffic.

        Returns the number of foreign pages faulted into the cache.  The
        insertion count is capped at twice the cache's page capacity —
        inserting more cannot change the cache contents, only waste time.
        """
        if duration_us < 0:
            raise ConfigError(f"cannot run background load for negative time {duration_us}")
        pages = int(self.model.miss_ios_per_second * duration_us / 1e6)
        block_size = self.cache.device.model.block_size
        cap = 2 * max(1, self.cache.capacity_bytes // block_size)
        inserted = min(pages, cap)
        tag = str(self._next_tag)
        self._next_tag += 1
        for i in range(inserted):
            self.cache.insert_foreign(tag, i, block_size)
        self.total_foreign_pages += inserted
        self.cache.device.clock.charge(duration_us)
        return inserted

    def eviction_wait_us(self) -> float:
        """Wait long enough for the load to displace the whole cache.

        The attack's scheduler calls this between breadth-first iterations;
        it is the simulated analogue of the paper's fixed 20-second wait.
        """
        block_size = self.cache.device.model.block_size
        pages = max(1, self.cache.capacity_bytes // block_size)
        # 1.5x safety margin over the exact displacement time.
        return 1.5 * pages / self.model.miss_ios_per_second * 1e6
