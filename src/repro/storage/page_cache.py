"""LRU page cache over the simulated storage device.

Models the OS page cache that the paper's attack has to fight: once a
false-positive query drags an SSTable block into the cache, re-querying the
same key is served from memory and no longer distinguishable from a negative
key.  The attacker relies on *legitimate background I/O* evicting those
blocks between attack iterations (section 9); the
:class:`~repro.storage.background.BackgroundLoad` generator drives that
eviction against this cache.

The paper's setup caps RocksDB's DRAM at 2 GB via cgroups while the dataset
is ~50 GB; the default capacity here is likewise a small fraction of a
default experiment's on-device bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import ConfigError
from repro.storage.device import StorageDevice

#: Simulated cost of serving one cached page (DRAM copy + lookup).
CACHE_HIT_COST_US = 0.8


@dataclass
class CacheStats:
    """Hit/miss counters; the idealized attack and tests read these."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        return self.hits / self.lookups if self.lookups else 0.0


class PageCache:
    """Capacity-bounded LRU cache of device blocks.

    Keys are ``(path, block_index)`` pairs; values are block payloads.  All
    LSM reads funnel through :meth:`read`, which charges either a DRAM-scale
    hit cost or a full device read on miss.
    """

    def __init__(self, device: StorageDevice, capacity_bytes: int,
                 hit_cost_us: float = CACHE_HIT_COST_US) -> None:
        if capacity_bytes < device.model.block_size:
            raise ConfigError(
                f"page cache capacity {capacity_bytes} smaller than one block "
                f"({device.model.block_size})"
            )
        self.device = device
        self.capacity_bytes = capacity_bytes
        self.hit_cost_us = hit_cost_us
        self._pages: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        self._bytes = 0
        self.stats = CacheStats()

    # ----------------------------------------------------------------- access

    def read(self, path: str, offset: int, length: int) -> bytes:
        """Read a byte range through the cache, block by block."""
        block_size = self.device.model.block_size
        first = offset // block_size
        last = (offset + length - 1) // block_size if length else first
        chunks = []
        for block_index in range(first, last + 1):
            chunks.append(self.read_block(path, block_index))
        blob = b"".join(chunks)
        start = offset - first * block_size
        return blob[start : start + length]

    def read_block(self, path: str, block_index: int) -> bytes:
        """Read one block, filling the cache on miss."""
        key = (path, block_index)
        cached = self._pages.get(key)
        if cached is not None:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            self.device.clock.charge(self.hit_cost_us)
            return cached
        self.stats.misses += 1
        block = self.device.read_block(path, block_index)
        self._insert(key, block)
        return block

    def contains(self, path: str, block_index: int) -> bool:
        """Whether a block is currently cached (no cost, no LRU touch)."""
        return (path, block_index) in self._pages

    # -------------------------------------------------------------- churning

    def insert_foreign(self, tag: str, block_index: int, size: int) -> None:
        """Insert a synthetic page on behalf of background load.

        Legitimate traffic reading unrelated files pushes the attacker's
        blocks out of the cache; the payload content is irrelevant, only the
        displacement matters, so we insert zero-filled pages keyed by an
        artificial path.
        """
        self._insert((f"!bg:{tag}", block_index), b"\x00" * size)

    def invalidate_file(self, path: str) -> None:
        """Drop every cached block of ``path`` (file deleted by compaction)."""
        stale = [key for key in self._pages if key[0] == path]
        for key in stale:
            self._bytes -= len(self._pages.pop(key))

    def clear(self) -> None:
        """Drop all cached pages."""
        self._pages.clear()
        self._bytes = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._pages)

    # ---------------------------------------------------------------- helpers

    def _insert(self, key: Tuple[str, int], block: bytes) -> None:
        if key in self._pages:
            self._bytes -= len(self._pages.pop(key))
        self._pages[key] = block
        self._bytes += len(block)
        while self._bytes > self.capacity_bytes and self._pages:
            _, evicted = self._pages.popitem(last=False)
            self._bytes -= len(evicted)
            self.stats.evictions += 1
