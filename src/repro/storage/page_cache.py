"""LRU page cache over the simulated storage device.

Models the OS page cache that the paper's attack has to fight: once a
false-positive query drags an SSTable block into the cache, re-querying the
same key is served from memory and no longer distinguishable from a negative
key.  The attacker relies on *legitimate background I/O* evicting those
blocks between attack iterations (section 9); the
:class:`~repro.storage.background.BackgroundLoad` generator drives that
eviction against this cache.

The paper's setup caps RocksDB's DRAM at 2 GB via cgroups while the dataset
is ~50 GB; the default capacity here is likewise a small fraction of a
default experiment's on-device bytes.

Beside the raw pages, the cache keeps a bounded LRU of *decoded* objects
(parsed SSTable blocks) keyed by the byte range they were decoded from.  A
decoded entry is only served while every underlying page is still resident,
and serving it charges the simulated clock exactly what re-reading those
pages would have charged — the decoded layer saves real (wall-clock) parse
and checksum work without perturbing simulated time by a single
microsecond.  Entries are invalidated together with their pages (eviction,
``invalidate_file``, ``clear``), so compaction can never serve a stale
block.

Cache identity is **version-scoped**: every key includes the file's device
generation (bumped on create/rename/delete/append), so a path recycled by
a newer version can never be answered from the previous file's blocks —
the stale entries simply stop being addressable and age out of the LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from repro.common.errors import ConfigError
from repro.storage.device import MappedRegion, StorageDevice

#: Simulated cost of serving one cached page (DRAM copy + lookup).
CACHE_HIT_COST_US = 0.8

#: Page key: (path, generation, block_index).
PageKey = Tuple[str, int, int]
#: Decoded key: (path, generation, offset, length).
DecodedKey = Tuple[str, int, int, int]


@dataclass
class CacheStats:
    """Hit/miss counters; the idealized attack and tests read these."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Decoded-object layer counters (wall-clock optimization only; the
    #: simulated charges of a decoded hit equal those of the page hits it
    #: stands in for).
    decoded_hits: int = 0
    decoded_misses: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        return self.hits / self.lookups if self.lookups else 0.0


class PageCache:
    """Capacity-bounded LRU cache of device blocks.

    Keys are ``(path, generation, block_index)`` triples; values are
    zero-copy views of the device file image (the simulated analogue of
    page-cache pages referencing the buffer cache).  All LSM reads funnel
    through :meth:`read`, which charges either a DRAM-scale hit cost or a
    full device read on miss.

    ``decoded_capacity`` bounds the decoded-object side table (entries, not
    bytes); ``None`` picks a default proportional to the page capacity and
    ``0`` disables the layer entirely (every :meth:`read_decoded` then
    decodes afresh, byte-for-byte what a plain :meth:`read` caller did).

    Threading: a reentrant lock serializes every structural operation
    (LRU order, insert, eviction, invalidation), making the cache safe
    for concurrent readers such as the wire server's worker threads.
    Pure membership probes (:meth:`contains`, :meth:`contains_decoded`)
    stay lock-free — a racy answer there is at worst stale, never
    corrupting.  As with the device, *determinism* additionally needs a
    deterministic access order, which the parallel build engine provides
    by keeping all cache traffic on one thread.
    """

    def __init__(self, device: StorageDevice, capacity_bytes: int,
                 hit_cost_us: float = CACHE_HIT_COST_US,
                 decoded_capacity: Optional[int] = None) -> None:
        if capacity_bytes < device.model.block_size:
            raise ConfigError(
                f"page cache capacity {capacity_bytes} smaller than one block "
                f"({device.model.block_size})"
            )
        if decoded_capacity is None:
            decoded_capacity = max(64, capacity_bytes // device.model.block_size)
        if decoded_capacity < 0:
            raise ConfigError(
                f"decoded capacity must be non-negative, got {decoded_capacity}"
            )
        self.device = device
        self.capacity_bytes = capacity_bytes
        self.hit_cost_us = hit_cost_us
        self.decoded_capacity = decoded_capacity
        self._pages: "OrderedDict[PageKey, memoryview]" = OrderedDict()
        self._bytes = 0
        # Decoded objects keyed by (path, gen, offset, length), plus a
        # reverse index from each underlying page to the decoded keys built
        # on it, so page eviction can invalidate dependents in O(dependents).
        self._decoded: "OrderedDict[DecodedKey, object]" = OrderedDict()
        self._decoded_by_page: Dict[PageKey, Set[DecodedKey]] = {}
        self.stats = CacheStats()
        self._lock = threading.RLock()
        #: The device block size is immutable; bound here to keep the
        #: per-read hot paths free of attribute-chain lookups.
        self._block_size = device.model.block_size

    # ----------------------------------------------------------------- access

    def read(self, path: str, offset: int, length: int) -> bytes:
        """Read a byte range through the cache, block by block.

        A zero-length read returns ``b""`` immediately: it touches no
        device block, charges no simulated time, and records no stats.
        """
        if length == 0:
            return b""
        block_size = self._block_size
        first = offset // block_size
        last = (offset + length - 1) // block_size
        chunks = []
        for block_index in range(first, last + 1):
            chunks.append(self.read_block(path, block_index))
        blob = b"".join(chunks)
        start = offset - first * block_size
        return blob[start : start + length]

    def read_block(self, path: str, block_index: int) -> memoryview:
        """Read one block, filling the cache on miss.

        Returns a zero-copy view of the block (bytes-like; hash/compare
        like the bytes it aliases).
        """
        with self._lock:
            key = (path, self.device.file_generation(path), block_index)
            cached = self._pages.get(key)
            if cached is not None:
                self._pages.move_to_end(key)
                self.stats.hits += 1
                self.device.clock.charge(self.hit_cost_us)
                return cached
            self.stats.misses += 1
            block = self.device.read_block_view(path, block_index)
            self._insert(key, block)
            return block

    def read_decoded(self, path: str, offset: int, length: int,
                     decode: Callable[[bytes], object],
                     region: Optional[MappedRegion] = None) -> object:
        """Read a byte range and return it decoded, caching the result.

        On a decoded hit (entry present *and* all underlying pages still
        resident) this charges the clock and updates page stats/LRU order
        exactly as the equivalent :meth:`read` would, then skips the
        decode.  Any other case faults the pages in through
        :meth:`read_block` (charge-identical to :meth:`read`) and
        decodes — from ``region``'s zero-copy view of the byte range
        when a mapping is supplied (data blocks usually straddle two
        device blocks, which block-joining would have to copy), else
        from the joined page bytes.  The simulated-time trace is
        identical whether this layer is enabled, disabled, or thrashing,
        and whether or not a region is used.
        """
        gen = self.device.file_generation(path)
        key = (path, gen, offset, length)
        block_size = self._block_size
        first = offset // block_size
        last = (offset + length - 1) // block_size if length else first
        with self._lock:
            obj = self._decoded.get(key)
            if obj is not None:
                pages = self._pages
                page_keys = [(path, gen, block_index)
                             for block_index in range(first, last + 1)]
                resident = True
                for page_key in page_keys:
                    if page_key not in pages:
                        resident = False
                        break
                if resident:
                    charge = self.device.clock.charge
                    hit_cost = self.hit_cost_us
                    stats = self.stats
                    for page_key in page_keys:
                        pages.move_to_end(page_key)
                        stats.hits += 1
                        charge(hit_cost)
                    self._decoded.move_to_end(key)
                    stats.decoded_hits += 1
                    return obj
                # Some page was evicted under the decoded entry: drop it
                # and rebuild through the ordinary (charged) read path.
                self._drop_decoded(key)
            self.stats.decoded_misses += 1
            if region is not None and not region.closed \
                    and region.generation == gen:
                # Fault the pages in (same charges/stats/LRU as read()),
                # then decode straight off the mapping — zero copies.
                for block_index in range(first, last + 1):
                    self.read_block(path, block_index)
                obj = decode(region.view(offset, length))
            else:
                obj = decode(self.read(path, offset, length))
            if self.decoded_capacity:
                self._insert_decoded(key, obj)
            return obj

    def read_decoded_many(self, requests) -> list:
        """Batched :meth:`read_decoded`: one lock acquisition for the lot.

        ``requests`` is a sequence of ``(path, offset, length, decode,
        region)`` tuples served strictly in order, each with semantics
        identical to a :meth:`read_decoded` call — the same charges,
        stats updates and LRU movement, in the same order — so the
        simulated-time trace cannot tell the two apart.  A caller that
        knows all its reads upfront (the sorted-view seek touches one
        block per active table) saves the per-call lock round trips and
        method dispatch; the classic pull-driven merge cannot batch,
        which is part of why the view wins wall-clock.
        """
        out = []
        append = out.append
        # file_generation is a single dict read (see its docstring); the
        # bound .get skips a method call per request on this hot loop.
        generation_of = self.device._generations.get
        block_size = self._block_size
        decoded = self._decoded
        decoded_get = decoded.get
        decoded_move = decoded.move_to_end
        pages = self._pages
        pages_move = pages.move_to_end
        stats = self.stats
        charge = self.device.clock.charge
        hit_cost = self.hit_cost_us
        # Counter deltas accumulate locally and flush once before the
        # lock drops: nothing can observe the stats mid-batch (every
        # reader takes the lock), and attribute stores are the single
        # largest non-charge cost of a batched seek.
        hits = decoded_hits = decoded_misses = 0
        with self._lock:
            for path, offset, length, decode, region in requests:
                gen = generation_of(path, 0)
                key = (path, gen, offset, length)
                obj = decoded_get(key)
                if obj is not None:
                    first = offset // block_size
                    last = (offset + length - 1) // block_size \
                        if length else first
                    if first == last:
                        page_key = (path, gen, first)
                        if page_key in pages:
                            pages_move(page_key)
                            hits += 1
                            charge(hit_cost)
                            decoded_move(key)
                            decoded_hits += 1
                            append(obj)
                            continue
                    elif last == first + 1:
                        # SSTable blocks usually straddle two device
                        # pages; spell the pair out to skip the listcomp.
                        page_key = (path, gen, first)
                        page_key2 = (path, gen, last)
                        if page_key in pages and page_key2 in pages:
                            pages_move(page_key)
                            hits += 2
                            charge(hit_cost)
                            pages_move(page_key2)
                            charge(hit_cost)
                            decoded_move(key)
                            decoded_hits += 1
                            append(obj)
                            continue
                    else:
                        page_keys = [(path, gen, block_index)
                                     for block_index in range(first, last + 1)]
                        if all(pk in pages for pk in page_keys):
                            for page_key in page_keys:
                                pages_move(page_key)
                                hits += 1
                                charge(hit_cost)
                            decoded_move(key)
                            decoded_hits += 1
                            append(obj)
                            continue
                    # A page under the entry was evicted: drop it and
                    # rebuild through the ordinary (charged) read path.
                    self._drop_decoded(key)
                decoded_misses += 1
                if region is not None and not region.closed \
                        and region.generation == gen:
                    first = offset // block_size
                    last = (offset + length - 1) // block_size \
                        if length else first
                    for block_index in range(first, last + 1):
                        self.read_block(path, block_index)
                    obj = decode(region.view(offset, length))
                else:
                    obj = decode(self.read(path, offset, length))
                if self.decoded_capacity:
                    self._insert_decoded(key, obj)
                append(obj)
            stats.hits += hits
            stats.decoded_hits += decoded_hits
            stats.decoded_misses += decoded_misses
        return out

    def contains(self, path: str, block_index: int) -> bool:
        """Whether a block is currently cached (no cost, no LRU touch)."""
        return (path, self.device.file_generation(path), block_index) \
            in self._pages

    def contains_decoded(self, path: str, offset: int, length: int) -> bool:
        """Whether a decoded entry is present (no cost, no LRU touch)."""
        return (path, self.device.file_generation(path), offset, length) \
            in self._decoded

    # -------------------------------------------------------------- churning

    def insert_foreign(self, tag: str, block_index: int, size: int) -> None:
        """Insert a synthetic page on behalf of background load.

        Legitimate traffic reading unrelated files pushes the attacker's
        blocks out of the cache; the payload content is irrelevant, only the
        displacement matters, so we insert zero-filled pages keyed by an
        artificial path (generation 0: the path never exists on device).
        """
        with self._lock:
            self._insert((f"!bg:{tag}", 0, block_index),
                         memoryview(b"\x00" * size))

    def invalidate_file(self, path: str) -> None:
        """Drop every cached block of ``path``, across all generations.

        Decoded entries built on the file go with their pages, so a
        compaction that deletes and reallocates table files can never be
        answered from a stale decoded block.  (Generation keying already
        prevents cross-generation hits; invalidation reclaims the bytes
        immediately instead of waiting for LRU aging.)
        """
        with self._lock:
            stale = [key for key in self._pages if key[0] == path]
            for key in stale:
                self._bytes -= len(self._pages.pop(key))
                self._invalidate_decoded_for_page(key)
            # Decoded entries can outlive their pages (page evicted, entry
            # not yet touched); sweep those too.
            stale_decoded = [key for key in self._decoded if key[0] == path]
            for key in stale_decoded:
                self._drop_decoded(key)

    def clear(self) -> None:
        """Drop all cached pages and decoded entries."""
        with self._lock:
            self._pages.clear()
            self._bytes = 0
            self._decoded.clear()
            self._decoded_by_page.clear()

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        return self._bytes

    @property
    def decoded_entries(self) -> int:
        """Number of decoded objects currently cached."""
        return len(self._decoded)

    def __len__(self) -> int:
        return len(self._pages)

    # ---------------------------------------------------------------- helpers

    def _insert(self, key: PageKey, block: memoryview) -> None:
        if key in self._pages:
            self._bytes -= len(self._pages.pop(key))
        self._pages[key] = block
        self._bytes += len(block)
        while self._bytes > self.capacity_bytes and self._pages:
            evicted_key, evicted = self._pages.popitem(last=False)
            self._bytes -= len(evicted)
            self.stats.evictions += 1
            self._invalidate_decoded_for_page(evicted_key)

    def _insert_decoded(self, key: DecodedKey, obj: object) -> None:
        if key in self._decoded:
            self._drop_decoded(key)
        self._decoded[key] = obj
        path, gen, offset, length = key
        block_size = self.device.model.block_size
        first = offset // block_size
        last = (offset + length - 1) // block_size if length else first
        for block_index in range(first, last + 1):
            self._decoded_by_page.setdefault(
                (path, gen, block_index), set()).add(key)
        while len(self._decoded) > self.decoded_capacity:
            oldest = next(iter(self._decoded))
            self._drop_decoded(oldest)

    def _drop_decoded(self, key: DecodedKey) -> None:
        self._decoded.pop(key, None)
        path, gen, offset, length = key
        block_size = self.device.model.block_size
        first = offset // block_size
        last = (offset + length - 1) // block_size if length else first
        for block_index in range(first, last + 1):
            dependents = self._decoded_by_page.get((path, gen, block_index))
            if dependents is not None:
                dependents.discard(key)
                if not dependents:
                    del self._decoded_by_page[(path, gen, block_index)]

    def _invalidate_decoded_for_page(self, page_key: PageKey) -> None:
        dependents = self._decoded_by_page.pop(page_key, None)
        if dependents:
            for decoded_key in list(dependents):
                self._drop_decoded(decoded_key)
