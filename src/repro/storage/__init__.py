"""Simulated storage substrate: clock, NVMe device, page cache, background load."""

from repro.storage.background import BackgroundLoad, LoadModel
from repro.storage.clock import SimClock, StopwatchHandle
from repro.storage.device import DEFAULT_BLOCK_SIZE, DeviceModel, DeviceStats, StorageDevice
from repro.storage.faults import FaultPlan, FaultStats, FaultyStorageDevice
from repro.storage.page_cache import CACHE_HIT_COST_US, CacheStats, PageCache

__all__ = [
    "BackgroundLoad",
    "CACHE_HIT_COST_US",
    "CacheStats",
    "DEFAULT_BLOCK_SIZE",
    "DeviceModel",
    "DeviceStats",
    "FaultPlan",
    "FaultStats",
    "FaultyStorageDevice",
    "LoadModel",
    "PageCache",
    "SimClock",
    "StopwatchHandle",
    "StorageDevice",
]
