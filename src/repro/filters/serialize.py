"""Filter (de)serialization — the SSTable filter block format.

RocksDB persists each table's filter in a filter block so reopening a
database does not re-scan table contents; this module provides the same
for every filter family in the reproduction.  The encoding is
tag-dispatched::

    u8 tag | family-specific payload

* **Bloom** — probe count, bit count, entry count, raw bit array.
* **Prefix Bloom** — prefix length + mode, then the nested Bloom payload.
* **SuRF** — variant, suffix bits, backend choice, then the pruned trie's
  *terminals* (prefix, payload) in sorted order; the trie (and, when
  requested, its LOUDS encoding) is rebuilt on load.  Only pruned data is
  stored — the serialized form is exactly as approximate as the filter.
* **Rosetta** — key width plus each level's Bloom payload.

Deserialized filters answer every query identically to the originals
(property-tested), so reopened trees keep bit-identical attack behaviour.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.common.errors import CorruptionError, FilterError
from repro.filters.base import Filter
from repro.filters.bitarray import BitArray
from repro.filters.bloom import BloomFilter
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.rosetta import RosettaFilter
from repro.filters.surf.cursor import TerminalKind
from repro.filters.surf.louds import LoudsBackend
from repro.filters.surf.suffix import SuffixScheme, SurfVariant
from repro.filters.surf.surf import SuRF
from repro.filters.surf.trie import TrieBackend, TrieNode
from repro.filters.surf.cursor import Terminal

_TAG_BLOOM = 1
_TAG_PBF = 2
_TAG_SURF = 3
_TAG_ROSETTA = 4
_TAG_SPLIT = 5

_BLOOM_HEADER = struct.Struct("<IQQ")
_PBF_HEADER = struct.Struct("<HBQ")
_SURF_HEADER = struct.Struct("<BBBI")
_SURF_TERMINAL = struct.Struct("<HQ")
_ROSETTA_HEADER = struct.Struct("<HQI")
_U32 = struct.Struct("<I")

_VARIANT_CODES = {SurfVariant.BASE: 0, SurfVariant.HASH: 1, SurfVariant.REAL: 2}
_VARIANT_BY_CODE = {code: variant for variant, code in _VARIANT_CODES.items()}


def serialize_filter(filt: Filter) -> bytes:
    """Encode any supported filter into its filter-block bytes."""
    from repro.filters.split import SplitFilter
    if isinstance(filt, PrefixBloomFilter):  # before Bloom: not a subclass,
        return bytes([_TAG_PBF]) + _encode_pbf(filt)  # but order documents intent
    if isinstance(filt, BloomFilter):
        return bytes([_TAG_BLOOM]) + _encode_bloom(filt)
    if isinstance(filt, SuRF):
        return bytes([_TAG_SURF]) + _encode_surf(filt)
    if isinstance(filt, RosettaFilter):
        return bytes([_TAG_ROSETTA]) + _encode_rosetta(filt)
    if isinstance(filt, SplitFilter):
        point = serialize_filter(filt.point_filter)
        range_part = serialize_filter(filt.range_filter)
        return (bytes([_TAG_SPLIT]) + _U32.pack(len(point)) + point
                + range_part)
    raise FilterError(f"cannot serialize filter of type {type(filt).__name__}")


def deserialize_filter(data: bytes) -> Filter:
    """Decode filter-block bytes back into a live filter."""
    if not data:
        raise CorruptionError("empty filter block")
    tag, payload = data[0], data[1:]
    if tag == _TAG_BLOOM:
        filt, rest = _decode_bloom(payload)
    elif tag == _TAG_PBF:
        filt, rest = _decode_pbf(payload)
    elif tag == _TAG_SURF:
        filt, rest = _decode_surf(payload)
    elif tag == _TAG_ROSETTA:
        filt, rest = _decode_rosetta(payload)
    elif tag == _TAG_SPLIT:
        filt, rest = _decode_split(payload)
    else:
        raise CorruptionError(f"unknown filter tag {tag}")
    if rest:
        raise CorruptionError(f"{len(rest)} trailing bytes after filter block")
    return filt


# ------------------------------------------------------------------- bloom

def _encode_bloom(filt: BloomFilter) -> bytes:
    bits = filt.bit_array
    return (_BLOOM_HEADER.pack(filt.num_probes, len(bits), filt.num_entries)
            + bits.to_bytes())


def _decode_bloom(data: bytes) -> Tuple[BloomFilter, bytes]:
    if len(data) < _BLOOM_HEADER.size:
        raise CorruptionError("truncated Bloom filter block")
    num_probes, num_bits, num_entries = _BLOOM_HEADER.unpack_from(data)
    payload_len = (num_bits + 7) // 8
    start = _BLOOM_HEADER.size
    end = start + payload_len
    if len(data) < end:
        raise CorruptionError("truncated Bloom bit payload")
    filt = BloomFilter(num_bits, num_probes)
    filt.restore_bits(BitArray.from_bytes(num_bits, data[start:end]),
                      num_entries)
    return filt, data[end:]


# --------------------------------------------------------------------- pbf

def _encode_pbf(filt: PrefixBloomFilter) -> bytes:
    return (_PBF_HEADER.pack(filt.prefix_len, int(filt.whole_key_filtering),
                             filt.num_keys)
            + _encode_bloom(filt.bloom))


def _decode_pbf(data: bytes) -> Tuple[PrefixBloomFilter, bytes]:
    if len(data) < _PBF_HEADER.size:
        raise CorruptionError("truncated PBF filter block")
    prefix_len, whole_key, num_keys = _PBF_HEADER.unpack_from(data)
    bloom, rest = _decode_bloom(data[_PBF_HEADER.size:])
    filt = PrefixBloomFilter(prefix_len, len(bloom.bit_array),
                             bloom.num_probes, bool(whole_key))
    filt.restore(bloom, num_keys)
    return filt, rest


# -------------------------------------------------------------------- surf

def _encode_surf(filt: SuRF) -> bytes:
    terminals = _collect_terminals(filt.backend)
    backend_code = 1 if isinstance(filt.backend, LoudsBackend) else 0
    out = [_SURF_HEADER.pack(_VARIANT_CODES[filt.scheme.variant],
                             filt.scheme.num_bits, backend_code,
                             len(terminals))]
    out.append(_U32.pack(filt.num_keys))
    for prefix, terminal in terminals:
        out.append(_SURF_TERMINAL.pack(len(prefix), terminal.payload))
        out.append(prefix)
    return b"".join(out)


def _decode_surf(data: bytes) -> Tuple[SuRF, bytes]:
    if len(data) < _SURF_HEADER.size + _U32.size:
        raise CorruptionError("truncated SuRF filter block")
    variant_code, suffix_bits, backend_code, count = _SURF_HEADER.unpack_from(
        data)
    if variant_code not in _VARIANT_BY_CODE:
        raise CorruptionError(f"unknown SuRF variant code {variant_code}")
    offset = _SURF_HEADER.size
    (num_keys,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    scheme = SuffixScheme(_VARIANT_BY_CODE[variant_code], suffix_bits)
    root = TrieNode()
    for _ in range(count):
        if len(data) < offset + _SURF_TERMINAL.size:
            raise CorruptionError("truncated SuRF terminal record")
        prefix_len, payload = _SURF_TERMINAL.unpack_from(data, offset)
        offset += _SURF_TERMINAL.size
        prefix = data[offset : offset + prefix_len]
        if len(prefix) != prefix_len:
            raise CorruptionError("truncated SuRF terminal prefix")
        offset += prefix_len
        _insert_terminal(root, prefix, payload)
    _refinalize(root)
    root.freeze()
    backend = (LoudsBackend(root) if backend_code
               else TrieBackend(root))
    return SuRF(backend, scheme, num_keys), data[offset:]


def _collect_terminals(backend) -> List[Tuple[bytes, Terminal]]:
    """DFS over the cursor protocol: terminals in lexicographic order."""
    out: List[Tuple[bytes, Terminal]] = []

    def visit(node, path: bytes) -> None:
        term = backend.terminal(node)
        if term is not None:
            out.append((path, term))
        if backend.has_children(node):
            for label, child in backend.children_sorted(node):
                visit(child, path + bytes([label]))

    visit(backend.root(), b"")
    return out


def _insert_terminal(root: TrieNode, prefix: bytes, payload: int) -> None:
    node = root
    for byte in prefix:
        child = node.children.get(byte)
        if child is None:
            child = TrieNode()
            node.children[byte] = child
        node = child
    node.terminal = Terminal(TerminalKind.LEAF, payload)


def _refinalize(node: TrieNode) -> None:
    if node.terminal is not None and node.children:
        node.terminal = Terminal(TerminalKind.PREFIX_KEY, node.terminal.payload)
    for child in node.children.values():
        _refinalize(child)


# -------------------------------------------------------------------- split

def _decode_split(data: bytes) -> Tuple[Filter, bytes]:
    from repro.filters.split import SplitFilter
    if len(data) < _U32.size:
        raise CorruptionError("truncated split filter block")
    (point_len,) = _U32.unpack_from(data)
    start = _U32.size
    if len(data) < start + point_len:
        raise CorruptionError("truncated split point-filter payload")
    point = deserialize_filter(data[start : start + point_len])
    range_filter = deserialize_filter(data[start + point_len:])
    return SplitFilter(point, range_filter), b""


# ------------------------------------------------------------------ rosetta

def _encode_rosetta(filt: RosettaFilter) -> bytes:
    out = [_ROSETTA_HEADER.pack(filt.key_bytes, filt.num_keys,
                                len(filt.levels))]
    for level in filt.levels:
        out.append(_encode_bloom(level))
    return b"".join(out)


def _decode_rosetta(data: bytes) -> Tuple[RosettaFilter, bytes]:
    if len(data) < _ROSETTA_HEADER.size:
        raise CorruptionError("truncated Rosetta filter block")
    key_bytes, num_keys, num_levels = _ROSETTA_HEADER.unpack_from(data)
    if num_levels != 8 * key_bytes:
        raise CorruptionError("Rosetta level count mismatches key width")
    rest = data[_ROSETTA_HEADER.size:]
    levels: List[BloomFilter] = []
    for _ in range(num_levels):
        bloom, rest = _decode_bloom(rest)
        levels.append(bloom)
    filt = RosettaFilter.__new__(RosettaFilter)
    Filter.__init__(filt)
    filt.key_bytes = key_bytes
    filt.key_bits = 8 * key_bytes
    filt.num_keys = num_keys
    filt.restore_levels(levels)
    return filt, rest
