"""Plain bit array used by Bloom filters and succinct bitvectors."""

from __future__ import annotations

from repro.common.errors import ConfigError


class BitArray:
    """Fixed-size mutable array of bits backed by a ``bytearray``.

    Bit ``i`` lives in byte ``i // 8`` at bit position ``i % 8`` (LSB
    first).  The layout is part of the serialized SSTable filter format, so
    it must stay stable.
    """

    __slots__ = ("_bits", "_buf")

    def __init__(self, num_bits: int) -> None:
        if num_bits < 0:
            raise ConfigError(f"bit array size must be non-negative, got {num_bits}")
        self._bits = num_bits
        self._buf = bytearray((num_bits + 7) // 8)

    def __len__(self) -> int:
        return self._bits

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1."""
        self._check(index)
        self._buf[index >> 3] |= 1 << (index & 7)

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0."""
        self._check(index)
        self._buf[index >> 3] &= ~(1 << (index & 7))

    def get(self, index: int) -> bool:
        """Read bit ``index``."""
        self._check(index)
        return bool(self._buf[index >> 3] & (1 << (index & 7)))

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def count(self) -> int:
        """Number of set bits."""
        return sum(bin(b).count("1") for b in self._buf)

    def memory_bits(self) -> int:
        """Bits of storage used (capacity, not population)."""
        return 8 * len(self._buf)

    def to_bytes(self) -> bytes:
        """Serialize the raw bit payload."""
        return bytes(self._buf)

    @classmethod
    def from_bytes(cls, num_bits: int, payload: bytes) -> "BitArray":
        """Rehydrate from :meth:`to_bytes` output."""
        if len(payload) != (num_bits + 7) // 8:
            raise ConfigError(
                f"payload of {len(payload)} bytes does not match {num_bits} bits"
            )
        out = cls(num_bits)
        out._buf[:] = payload
        return out

    def _check(self, index: int) -> None:
        if not 0 <= index < self._bits:
            raise ConfigError(f"bit index {index} out of range [0, {self._bits})")
