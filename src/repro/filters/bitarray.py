"""Plain bit array used by Bloom filters and succinct bitvectors.

Also home of the shared :func:`popcount` primitive: ``int.bit_count()``
where the interpreter has it (Python >= 3.10), and a byte-table fallback
for the 3.9 floor pinned by pyproject.  Rank/select directories and Bloom
population counts are popcount-bound, so this one function choice shows up
directly in filter construction wall-clock.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

#: Set-bit count per byte value, the fallback popcount kernel.
_BYTE_COUNTS = bytes(bin(value).count("1") for value in range(256))


def _popcount_table(x: int) -> int:
    """Portable popcount for non-negative ints (used below Python 3.10)."""
    count = 0
    while x:
        count += _BYTE_COUNTS[x & 0xFF]
        x >>= 8
    return count


try:  # pragma: no cover - exercised on Python >= 3.10 only
    popcount = int.bit_count  # type: ignore[attr-defined]
    _HAVE_BIT_COUNT = True
except AttributeError:  # pragma: no cover - exercised on Python 3.9 only
    popcount = _popcount_table
    _HAVE_BIT_COUNT = False


class BitArray:
    """Fixed-size mutable array of bits backed by a ``bytearray``.

    Bit ``i`` lives in byte ``i // 8`` at bit position ``i % 8`` (LSB
    first).  The layout is part of the serialized SSTable filter format, so
    it must stay stable.
    """

    __slots__ = ("_bits", "_buf")

    def __init__(self, num_bits: int) -> None:
        if num_bits < 0:
            raise ConfigError(f"bit array size must be non-negative, got {num_bits}")
        self._bits = num_bits
        self._buf = bytearray((num_bits + 7) // 8)

    def __len__(self) -> int:
        return self._bits

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1."""
        self._check(index)
        self._buf[index >> 3] |= 1 << (index & 7)

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0."""
        self._check(index)
        self._buf[index >> 3] &= ~(1 << (index & 7))

    def get(self, index: int) -> bool:
        """Read bit ``index``."""
        self._check(index)
        return bool(self._buf[index >> 3] & (1 << (index & 7)))

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def count(self) -> int:
        """Number of set bits."""
        if _HAVE_BIT_COUNT:
            return int.from_bytes(self._buf, "little").bit_count()
        return sum(map(_BYTE_COUNTS.__getitem__, self._buf))

    def memory_bits(self) -> int:
        """Bits of storage used (capacity, not population)."""
        return 8 * len(self._buf)

    def to_bytes(self) -> bytes:
        """Serialize the raw bit payload."""
        return bytes(self._buf)

    @classmethod
    def from_bytes(cls, num_bits: int, payload: bytes) -> "BitArray":
        """Rehydrate from :meth:`to_bytes` output."""
        if len(payload) != (num_bits + 7) // 8:
            raise ConfigError(
                f"payload of {len(payload)} bytes does not match {num_bits} bits"
            )
        out = cls(num_bits)
        out._buf[:] = payload
        return out

    def _check(self, index: int) -> None:
        if not 0 <= index < self._bits:
            raise ConfigError(f"bit index {index} out of range [0, {self._bits})")
