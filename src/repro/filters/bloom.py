"""Standard Bloom filter (the RocksDB default point filter).

Included both as the baseline non-range filter — against which prefix
siphoning does *not* apply, because a Bloom positive shares no structure
with stored keys — and as the building block of the prefix Bloom filter
and Rosetta.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.filters.base import Filter, FilterBuilder
from repro.filters.bitarray import BitArray
from repro.filters.hashing import probe_indices

#: Below this batch size the numpy probe path costs more than it saves.
_BATCH_MIN = 16


def _numpy():
    """The numpy module, or ``None`` when unavailable (3.9 floor allows it)."""
    try:
        import numpy as np
    except ImportError:
        return None
    return np


def _batch_hashes_mod(np, keys: Sequence[bytes], num_bits: int):
    """``(h1 % m, h2 % m)`` per key, in input order.

    Vectorized FNV-1a: keys are grouped by length and each group's hash is
    folded one byte-column at a time, exactly mirroring the scalar
    ``double_hashes`` (uint64 wraparound matches FNV's mod-2**64
    arithmetic).  Scattering results back through the position index keeps
    the output aligned with the input order.
    """
    from repro.filters.hashing import _FNV_PRIME, fnv1a_64_init

    m = np.uint64(num_bits)
    prime = np.uint64(_FNV_PRIME)
    h1m = np.empty(len(keys), dtype=np.uint64)
    h2m = np.empty(len(keys), dtype=np.uint64)
    by_length = {}
    for pos, key in enumerate(keys):
        by_length.setdefault(len(key), []).append(pos)
    for length, positions in by_length.items():
        n = len(positions)
        h1 = np.full(n, fnv1a_64_init(0), dtype=np.uint64)
        h2 = np.full(n, fnv1a_64_init(1), dtype=np.uint64)
        if length:
            columns = np.frombuffer(
                b"".join(keys[pos] for pos in positions), dtype=np.uint8)
            columns = columns.reshape(n, length).astype(np.uint64)
            for col in range(length):
                byte = columns[:, col]
                h1 = (h1 ^ byte) * prime
                h2 = (h2 ^ byte) * prime
        h2 = h2 | np.uint64(1)
        where = np.asarray(positions, dtype=np.int64)
        h1m[where] = h1 % m
        h2m[where] = h2 % m
    return h1m, h2m


def optimal_num_probes(bits_per_key: float) -> int:
    """FPR-minimizing probe count k = ln(2) * bits/key, at least 1."""
    return max(1, round(math.log(2) * bits_per_key))


def theoretical_fpr(bits_per_key: float, num_probes: Optional[int] = None) -> float:
    """Classic Bloom FPR approximation (1 - e^{-k/(m/n)})^k."""
    if bits_per_key <= 0:
        return 1.0
    k = num_probes or optimal_num_probes(bits_per_key)
    return (1.0 - math.exp(-k / bits_per_key)) ** k


class BloomFilter(Filter):
    """Dynamic Bloom filter with double hashing.

    ``num_bits`` is rounded up to at least 64 so tiny SSTables still get a
    functional filter.
    """

    name = "bloom"

    def __init__(self, num_bits: int, num_probes: int) -> None:
        super().__init__()
        if num_probes <= 0:
            raise ConfigError(f"num_probes must be positive, got {num_probes}")
        self._bits = BitArray(max(64, num_bits))
        self.num_probes = num_probes
        self.num_entries = 0

    @classmethod
    def for_entries(cls, expected_entries: int, bits_per_key: float) -> "BloomFilter":
        """Size a filter for ``expected_entries`` at ``bits_per_key``."""
        if expected_entries < 0:
            raise ConfigError("expected_entries must be non-negative")
        if bits_per_key <= 0:
            raise ConfigError(f"bits_per_key must be positive, got {bits_per_key}")
        num_bits = int(expected_entries * bits_per_key) or 64
        return cls(num_bits, optimal_num_probes(bits_per_key))

    def add(self, key: bytes) -> None:
        """Insert ``key``."""
        for index in probe_indices(key, self.num_probes, len(self._bits)):
            self._bits.set(index)
        self.num_entries += 1

    def _may_contain(self, key: bytes) -> bool:
        return all(
            self._bits.get(index)
            for index in probe_indices(key, self.num_probes, len(self._bits))
        )

    def _may_contain_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Batched probes, hashing the whole key set at once.

        Bit-identical to the scalar loop: same decomposed probe-index
        arithmetic as :meth:`BloomFilterBuilder.build_batch`
        (``((h1 % m) + (i * (h2 % m)) % m) % m`` — the direct
        ``h1 + i*h2`` would wrap at 2**64 and diverge from the scalar
        path's arbitrary-precision ints).
        """
        np = _numpy()
        if np is None or len(keys) < _BATCH_MIN:
            return super()._may_contain_many(keys)
        num_bits = len(self._bits)
        m = np.uint64(num_bits)
        h1m, h2m = _batch_hashes_mod(np, keys, num_bits)
        buf = np.frombuffer(self._bits._buf, dtype=np.uint8)
        passed = np.ones(len(keys), dtype=bool)
        for i in range(self.num_probes):
            # i * h2m < num_probes * num_bits, far below 2**64.
            indices = (h1m + (np.uint64(i) * h2m) % m) % m
            bits = buf[(indices >> np.uint64(3)).astype(np.int64)]
            passed &= ((bits >> (indices & np.uint64(7)).astype(np.uint8))
                       & np.uint8(1)).astype(bool)
        return passed.tolist()

    def memory_bits(self) -> int:
        """Size of the bit array."""
        return self._bits.memory_bits()

    @property
    def bit_array(self) -> BitArray:
        """The underlying bit array (serialization support)."""
        return self._bits

    def restore_bits(self, bits: BitArray, num_entries: int) -> None:
        """Replace the bit payload (filter-block deserialization)."""
        if len(bits) != len(self._bits):
            raise ConfigError(
                f"bit payload of {len(bits)} bits does not match the "
                f"filter's {len(self._bits)}"
            )
        self._bits = bits
        self.num_entries = num_entries

    def fill_ratio(self) -> float:
        """Fraction of set bits — sanity metric for sizing tests."""
        return self._bits.count() / len(self._bits)


class BloomFilterBuilder(FilterBuilder):
    """Builds one Bloom filter per SSTable at a fixed bits/key budget."""

    def __init__(self, bits_per_key: float = 10.0) -> None:
        if bits_per_key <= 0:
            raise ConfigError(f"bits_per_key must be positive, got {bits_per_key}")
        self.bits_per_key = bits_per_key

    @property
    def name(self) -> str:
        return f"bloom({self.bits_per_key:g}b/key)"

    def build(self, sorted_keys: Sequence[bytes]) -> BloomFilter:
        filt = BloomFilter.for_entries(len(sorted_keys), self.bits_per_key)
        for key in sorted_keys:
            filt.add(key)
        return filt

    def build_batch(self, sorted_keys: Sequence[bytes]) -> BloomFilter:
        """Vectorized build, bit-identical to :meth:`build`.

        Uses numpy when available to hash all keys at once (FNV-1a folded
        one byte-column at a time over keys grouped by length) and set all
        probe bits with one scatter.  Falls back to the scalar path when
        numpy is missing or the key count is too small to amortize the
        array setup.

        Bit-identity caveat: the scalar probe ``(h1 + i*h2) % m`` runs in
        arbitrary-precision Python ints, so the uint64 pipeline must
        decompose it as ``((h1 % m) + (i * (h2 % m)) % m) % m`` — the
        direct form would wrap ``h1 + i*h2`` at 2**64 and diverge.
        """
        np = _numpy()
        if np is None or len(sorted_keys) < 32:
            return self.build(sorted_keys)

        filt = BloomFilter.for_entries(len(sorted_keys), self.bits_per_key)
        num_bits = len(filt.bit_array)
        m = np.uint64(num_bits)
        h1m, h2m = _batch_hashes_mod(np, sorted_keys, num_bits)
        indices = np.concatenate([
            # i * h2m < num_probes * num_bits, far below 2**64.
            (h1m + (np.uint64(i) * h2m) % m) % m
            for i in range(filt.num_probes)
        ])
        byte_index = (indices >> np.uint64(3)).astype(np.int64)
        bit_in_byte = (indices & np.uint64(7)).astype(np.uint8)
        values = np.left_shift(np.ones_like(bit_in_byte), bit_in_byte)
        buf = np.frombuffer(filt.bit_array._buf, dtype=np.uint8)
        np.bitwise_or.at(buf, byte_index, values)
        filt.num_entries = len(sorted_keys)
        return filt
