"""Filters: Bloom, prefix Bloom, SuRF (all variants), Rosetta."""

from repro.filters.base import (
    Filter,
    FilterBuilder,
    FilterQueryStats,
    RangeFilter,
    measure_fpr,
)
from repro.filters.bitarray import BitArray
from repro.filters.bloom import (
    BloomFilter,
    BloomFilterBuilder,
    optimal_num_probes,
    theoretical_fpr,
)
from repro.filters.hashing import double_hashes, fnv1a_64, probe_indices, suffix_hash_bits
from repro.filters.prefix_bloom import PrefixBloomFilter, PrefixBloomFilterBuilder
from repro.filters.rank_select import BitVector
from repro.filters.serialize import deserialize_filter, serialize_filter
from repro.filters.rosetta import RosettaFilter, RosettaFilterBuilder
from repro.filters.split import SplitFilter, SplitFilterBuilder
from repro.filters.surf import (
    LoudsBackend,
    SuRF,
    SuRFBuilder,
    SuffixScheme,
    SurfVariant,
    TrieBackend,
)

__all__ = [
    "BitArray",
    "BitVector",
    "BloomFilter",
    "BloomFilterBuilder",
    "Filter",
    "FilterBuilder",
    "FilterQueryStats",
    "LoudsBackend",
    "PrefixBloomFilter",
    "PrefixBloomFilterBuilder",
    "RangeFilter",
    "RosettaFilter",
    "RosettaFilterBuilder",
    "SplitFilter",
    "SplitFilterBuilder",
    "SuRF",
    "SuRFBuilder",
    "SuffixScheme",
    "SurfVariant",
    "TrieBackend",
    "deserialize_filter",
    "double_hashes",
    "fnv1a_64",
    "measure_fpr",
    "optimal_num_probes",
    "probe_indices",
    "serialize_filter",
    "suffix_hash_bits",
    "theoretical_fpr",
]
