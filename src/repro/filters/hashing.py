"""Deterministic hash functions for filters.

Python's builtin ``hash()`` is salted per process, which would make filter
contents (and therefore attack transcripts) irreproducible; every filter in
this library hashes through the functions here instead.

``fnv1a_64`` is the workhorse.  Bloom filters use Kirsch-Mitzenmacher
double hashing (two independent 64-bit hashes combined as ``h1 + i*h2``),
the standard construction RocksDB-style Bloom filters use to avoid k
independent hash computations.
"""

from __future__ import annotations

from typing import Tuple

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a_64_init(seed: int = 0) -> int:
    """Initial FNV-1a state for incremental hashing."""
    return (_FNV_OFFSET ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64


def fnv1a_64_update(state: int, data: bytes) -> int:
    """Fold ``data`` into an FNV-1a state (enables prefix caching)."""
    for byte in data:
        state = ((state ^ byte) * _FNV_PRIME) & _MASK64
    return state


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """64-bit FNV-1a hash of ``data``, tweakable by ``seed``."""
    return fnv1a_64_update(fnv1a_64_init(seed), data)


def double_hashes(data: bytes) -> Tuple[int, int]:
    """Two independent 64-bit hashes for double hashing.

    The second hash is forced odd so that successive probe indices
    ``(h1 + i*h2) % m`` cycle through distinct residues for power-of-two m.
    """
    h1 = fnv1a_64(data, seed=0)
    h2 = fnv1a_64(data, seed=1) | 1
    return h1, h2


def probe_indices(data: bytes, num_probes: int, num_bits: int):
    """Yield the ``num_probes`` Bloom probe positions for ``data``."""
    h1, h2 = double_hashes(data)
    for i in range(num_probes):
        yield (h1 + i * h2) % num_bits


#: Seed of the SuRF-Hash suffix hash — public knowledge per the paper's
#: attack assumption ("the hash function's purpose is to reduce the FPR and
#: not for security"), which the attacker's step-3 pruning relies on.
SUFFIX_HASH_SEED = 7


def suffix_hash_bits(key: bytes, num_bits: int) -> int:
    """The ``num_bits``-bit hash value SuRF-Hash stores per key (section 6.1)."""
    if num_bits == 0:
        return 0
    return fnv1a_64(key, seed=SUFFIX_HASH_SEED) & ((1 << num_bits) - 1)
