"""Split point/range filters — the paper's key-value-store mitigation.

Section 11: "A key-value engine can block prefix siphoning by maintaining
separate filters for point and range queries for each SSTable file.
Unfortunately, this approach will double filter memory consumption.  In
addition, it will not block attacks that target range queries."

:class:`SplitFilter` composes a standard Bloom filter for point queries —
whose false positives are prefix-free hash collisions, breaking
characteristic C1 — with a range filter (SuRF by default) consulted only
by range queries.  The mitigation experiment quantifies all three of the
section's claims: the point attack collapses, memory roughly doubles, and
the range-descent attack sails through the range filter regardless.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.filters.base import FilterBuilder, RangeFilter
from repro.filters.bloom import BloomFilter, BloomFilterBuilder
from repro.filters.surf.surf import SuRFBuilder


class SplitFilter(RangeFilter):
    """Point queries -> Bloom filter; range queries -> range filter."""

    name = "split"

    def __init__(self, point_filter: BloomFilter, range_filter) -> None:
        super().__init__()
        self.point_filter = point_filter
        self.range_filter = range_filter
        self.name = f"split({point_filter.name}+{range_filter.name})"

    def _may_contain(self, key: bytes) -> bool:
        # The range structure is never consulted for point queries — the
        # entire point of the mitigation.
        return self.point_filter.may_contain(key)

    def _may_contain_many(self, keys: Sequence[bytes]) -> List[bool]:
        # Public batch call: the inner Bloom's stats advance exactly as
        # the scalar loop's per-key may_contain calls would.
        return self.point_filter.may_contain_many(keys)

    def _may_contain_range(self, low: bytes, high: bytes) -> bool:
        return self.range_filter.may_contain_range(low, high)

    def _may_contain_range_many(
            self, ranges: Sequence[Tuple[bytes, bytes]]) -> List[bool]:
        return self.range_filter.may_contain_range_many(list(ranges))

    def memory_bits(self) -> int:
        """Both structures — the doubled memory of section 11."""
        return self.point_filter.memory_bits() + self.range_filter.memory_bits()


class SplitFilterBuilder(FilterBuilder):
    """Builds one Bloom + one range filter per SSTable."""

    def __init__(self, point_builder: Optional[FilterBuilder] = None,
                 range_builder: Optional[FilterBuilder] = None) -> None:
        self.point_builder = point_builder or BloomFilterBuilder(10.0)
        self.range_builder = range_builder or SuRFBuilder(variant="real",
                                                          suffix_bits=8)
        if not isinstance(self.point_builder, BloomFilterBuilder):
            raise ConfigError(
                "the split mitigation's point filter must be a Bloom filter "
                "(a range filter would reintroduce the vulnerability)"
            )

    @property
    def name(self) -> str:
        return f"split({self.point_builder.name}+{self.range_builder.name})"

    def build(self, sorted_keys: Sequence[bytes]) -> SplitFilter:
        return SplitFilter(self.point_builder.build(sorted_keys),
                           self.range_builder.build(sorted_keys))
