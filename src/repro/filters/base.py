"""Filter interfaces.

The LSM-tree consults one filter per SSTable before issuing I/O (paper
section 2.2).  Point filters answer ``may_contain``; range filters
additionally answer ``may_contain_range``.  Both obey the one-sided error
contract: a present key/non-empty range always answers True (no false
negatives); absent keys may answer True with probability ~FPR.

Concrete implementations: :class:`~repro.filters.bloom.BloomFilter`,
:class:`~repro.filters.prefix_bloom.PrefixBloomFilter`,
:class:`~repro.filters.surf.SuRF`,
:class:`~repro.filters.rosetta.RosettaFilter`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass
class FilterQueryStats:
    """Per-filter query counters.

    ``positives`` counts queries the filter passed.  The idealized attack
    of section 10.2.2 reads these "internal RocksDB debugging counters"
    instead of timing queries.
    """

    point_queries: int = 0
    positives: int = 0
    range_queries: int = 0
    range_positives: int = 0

    def record_point(self, passed: bool) -> None:
        """Record one point-query outcome."""
        self.point_queries += 1
        if passed:
            self.positives += 1

    def record_range(self, passed: bool) -> None:
        """Record one range-query outcome."""
        self.range_queries += 1
        if passed:
            self.range_positives += 1

    def record_points(self, verdicts: Sequence[bool]) -> None:
        """Record a batch of point-query outcomes (same totals as a loop)."""
        self.point_queries += len(verdicts)
        self.positives += sum(verdicts)

    def record_ranges(self, verdicts: Sequence[bool]) -> None:
        """Record a batch of range-query outcomes (same totals as a loop)."""
        self.range_queries += len(verdicts)
        self.range_positives += sum(verdicts)


class Filter(abc.ABC):
    """Approximate-membership filter over a set of byte-string keys."""

    #: Human-readable filter family name (reports, bench labels).
    name: str = "filter"

    def __init__(self) -> None:
        self.stats = FilterQueryStats()

    @abc.abstractmethod
    def _may_contain(self, key: bytes) -> bool:
        """Implementation hook for the point query."""

    def may_contain(self, key: bytes) -> bool:
        """Point query with one-sided error; updates :attr:`stats`."""
        passed = self._may_contain(key)
        self.stats.record_point(passed)
        return passed

    def _may_contain_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Implementation hook for batched point queries.

        Must return, for every input order and multiplicity, exactly the
        verdicts a scalar ``_may_contain`` loop would — filters override
        this with vectorized or shared-prefix traversals, but the verdict
        vector is part of the contract, not an approximation of it.
        """
        may_contain = self._may_contain
        return [may_contain(key) for key in keys]

    def probe_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Pure batched point probes: verdicts only, **no** stats update.

        The LSM probe engine uses this for its prepass, then replays the
        scalar control flow and records stats only for the probes that
        path actually consumes — so engine on/off leaves
        :attr:`stats` bit-identical.
        """
        return self._may_contain_many(list(keys))

    def may_contain_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Batched point query; updates :attr:`stats` like a scalar loop."""
        verdicts = self._may_contain_many(list(keys))
        self.stats.record_points(verdicts)
        return verdicts

    @abc.abstractmethod
    def memory_bits(self) -> int:
        """Approximate in-memory size of the filter, in bits."""

    def bits_per_key(self, num_keys: int) -> float:
        """Space efficiency measure used throughout the paper."""
        return self.memory_bits() / num_keys if num_keys else 0.0


class RangeFilter(Filter):
    """Filter that also answers range-emptiness queries (section 2.3.1)."""

    @abc.abstractmethod
    def _may_contain_range(self, low: bytes, high: bytes) -> bool:
        """Implementation hook for the closed-range query ``[low, high]``."""

    def may_contain_range(self, low: bytes, high: bytes) -> bool:
        """Range query with one-sided error; updates :attr:`stats`."""
        passed = self._may_contain_range(low, high)
        self.stats.record_range(passed)
        return passed

    def _may_contain_range_many(
            self, ranges: Sequence[Tuple[bytes, bytes]]) -> List[bool]:
        """Implementation hook for batched range queries (scalar default)."""
        may_contain_range = self._may_contain_range
        return [may_contain_range(low, high) for low, high in ranges]

    def probe_range_many(
            self, ranges: Sequence[Tuple[bytes, bytes]]) -> List[bool]:
        """Pure batched range probes: verdicts only, no stats update."""
        return self._may_contain_range_many(list(ranges))

    def may_contain_range_many(
            self, ranges: Sequence[Tuple[bytes, bytes]]) -> List[bool]:
        """Batched range query; updates :attr:`stats` like a scalar loop."""
        verdicts = self._may_contain_range_many(list(ranges))
        self.stats.record_ranges(verdicts)
        return verdicts


class FilterBuilder(abc.ABC):
    """Factory building one filter per SSTable from its sorted key list.

    Mirrors RocksDB's ``FilterPolicy``: the LSM engine owns one builder and
    calls it at SSTable-construction time, so swapping the filter under an
    experiment is a one-argument change.
    """

    @abc.abstractmethod
    def build(self, sorted_keys: Sequence[bytes]) -> Filter:
        """Build a filter over ``sorted_keys`` (sorted, unique)."""

    def build_batch(self, sorted_keys: Sequence[bytes]) -> Filter:
        """Batch-oriented build; defaults to :meth:`build`.

        Builders may override this with a vectorized implementation, but
        the result must be **bit-identical** to :meth:`build` over the
        same keys — the SSTable build engine uses whichever is available
        and the on-disk filter block must not depend on that choice.
        """
        return self.build(sorted_keys)

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Name of the filters this builder produces."""


def measure_fpr(filt: Filter, absent_keys: Iterable[bytes]) -> float:
    """Empirical false-positive rate over keys known to be absent.

    FPR = FP / (FP + NK) per section 2.3; the caller guarantees none of
    ``absent_keys`` is stored.
    """
    false_positives = 0
    total = 0
    for key in absent_keys:
        total += 1
        if filt.may_contain(key):
            false_positives += 1
    return false_positives / total if total else 0.0
