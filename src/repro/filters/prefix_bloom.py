"""Prefix Bloom filter (PBF) — RocksDB's deployed range filter (section 7.1).

A PBF is a Bloom filter plus a fixed prefix length ``l``: inserting key
``k`` inserts both ``k`` and its ``l``-byte prefix into the Bloom filter.
Range queries are restricted to "all keys starting with alpha" for an
``l``-byte alpha and are answered by querying the Bloom filter for alpha.

This dual insertion is exactly what makes the PBF vulnerable: an ``l``-byte
*point* query for a true prefix of a stored key hits the prefix entry and
passes — the "prefix false positives" of section 7.2 — so a random-guessing
attacker who discovers ``l`` observes an FPR bump at that length.

The paper works with bit-granularity prefixes (l = 40 bits); all our keys
and symbols are bytes, so ``prefix_len`` here is in bytes (40 bits = 5
bytes at paper scale, 24 bits = 3 bytes at the default reproduction scale).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.filters.base import FilterBuilder, RangeFilter
from repro.filters.bloom import BloomFilter, optimal_num_probes


class PrefixBloomFilter(RangeFilter):
    """Bloom filter storing keys and their fixed-length prefixes."""

    name = "prefix-bloom"

    def __init__(self, prefix_len: int, num_bits: int, num_probes: int,
                 whole_key_filtering: bool = True) -> None:
        """``whole_key_filtering=False`` reproduces the prefix-only PBF
        configuration of section 7.1 (lower memory, higher point FPR); the
        attack works against both.
        """
        super().__init__()
        if prefix_len <= 0:
            raise ConfigError(f"prefix length must be positive, got {prefix_len}")
        self.prefix_len = prefix_len
        self.whole_key_filtering = whole_key_filtering
        self._bloom = BloomFilter(num_bits, num_probes)
        self.num_keys = 0

    @classmethod
    def for_entries(cls, expected_entries: int, bits_per_key: float,
                    prefix_len: int, whole_key_filtering: bool = True
                    ) -> "PrefixBloomFilter":
        """Size the underlying Bloom filter for the total entry count.

        With whole-key filtering each key contributes up to two entries
        (key + prefix); ``bits_per_key`` is interpreted against *keys*, as
        RocksDB does, so the paper's "18 bits/key" configurations map
        directly.
        """
        num_bits = int(expected_entries * bits_per_key) or 64
        entries_per_key = 2 if whole_key_filtering else 1
        probes = optimal_num_probes(bits_per_key / entries_per_key)
        return cls(prefix_len, num_bits, probes, whole_key_filtering)

    def add(self, key: bytes) -> None:
        """Insert a key and its ``prefix_len``-byte prefix."""
        if self.whole_key_filtering:
            self._bloom.add(key)
        if len(key) >= self.prefix_len:
            self._bloom.add(key[: self.prefix_len])
        elif not self.whole_key_filtering:
            # Short keys must still be findable in prefix-only mode.
            self._bloom.add(key)
        self.num_keys += 1

    def _may_contain(self, key: bytes) -> bool:
        if self.whole_key_filtering:
            return self._bloom.may_contain(key)
        probe = key[: self.prefix_len] if len(key) >= self.prefix_len else key
        return self._bloom.may_contain(probe)

    def _may_contain_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Batched probes through the Bloom filter's vectorized path.

        Goes through the inner filter's *public* batch query so its stats
        advance by the same totals the scalar loop produces.
        """
        if self.whole_key_filtering:
            return self._bloom.may_contain_many(keys)
        prefix_len = self.prefix_len
        probes = [key[:prefix_len] if len(key) >= prefix_len else key
                  for key in keys]
        return self._bloom.may_contain_many(probes)

    def _may_contain_range(self, low: bytes, high: bytes) -> bool:
        """Supported only for ranges within one ``l``-byte prefix.

        Ranges that span prefixes cannot be answered by a PBF; following
        RocksDB, the filter conservatively passes them (no I/O saved).
        """
        if (
            len(low) >= self.prefix_len
            and low[: self.prefix_len] == high[: self.prefix_len]
        ):
            return self._bloom.may_contain(low[: self.prefix_len])
        return True

    def _may_contain_range_many(
            self, ranges: Sequence[Tuple[bytes, bytes]]) -> List[bool]:
        """Batch the same-prefix probes; spanning ranges pass untouched.

        Only the ranges the scalar path would probe reach the Bloom
        filter, so inner stats totals stay identical.
        """
        prefix_len = self.prefix_len
        verdicts = [True] * len(ranges)
        positions: List[int] = []
        probes: List[bytes] = []
        for i, (low, high) in enumerate(ranges):
            if len(low) >= prefix_len and low[:prefix_len] == high[:prefix_len]:
                positions.append(i)
                probes.append(low[:prefix_len])
        if probes:
            for i, passed in zip(positions,
                                 self._bloom.may_contain_many(probes)):
                verdicts[i] = passed
        return verdicts

    def memory_bits(self) -> int:
        """Size of the underlying Bloom filter."""
        return self._bloom.memory_bits()

    @property
    def bloom(self) -> BloomFilter:
        """The underlying Bloom filter (serialization support)."""
        return self._bloom

    def restore(self, bloom: BloomFilter, num_keys: int) -> None:
        """Replace the Bloom filter (filter-block deserialization)."""
        self._bloom = bloom
        self.num_keys = num_keys


class PrefixBloomFilterBuilder(FilterBuilder):
    """Builds one PBF per SSTable (RocksDB ``prefix_extractor`` analogue)."""

    def __init__(self, prefix_len: int, bits_per_key: float = 18.0,
                 whole_key_filtering: bool = True) -> None:
        if prefix_len <= 0:
            raise ConfigError(f"prefix length must be positive, got {prefix_len}")
        if bits_per_key <= 0:
            raise ConfigError(f"bits_per_key must be positive, got {bits_per_key}")
        self.prefix_len = prefix_len
        self.bits_per_key = bits_per_key
        self.whole_key_filtering = whole_key_filtering

    @property
    def name(self) -> str:
        return f"pbf(l={self.prefix_len}B,{self.bits_per_key:g}b/key)"

    def build(self, sorted_keys: Sequence[bytes]) -> PrefixBloomFilter:
        filt = PrefixBloomFilter.for_entries(
            len(sorted_keys), self.bits_per_key, self.prefix_len,
            self.whole_key_filtering,
        )
        for key in sorted_keys:
            filt.add(key)
        return filt
