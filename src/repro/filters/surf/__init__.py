"""SuRF — Succinct Range Filter (paper section 6), both backends."""

from repro.filters.surf.cursor import Terminal, TerminalKind, lookup, may_contain_range
from repro.filters.surf.louds import LoudsBackend, choose_dense_levels
from repro.filters.surf.suffix import SuffixScheme, SurfVariant, real_suffix_bits
from repro.filters.surf.surf import SuRF, SuRFBuilder
from repro.filters.surf.trie import TrieBackend, build_pruned_trie, pruned_depths

__all__ = [
    "LoudsBackend",
    "SuRF",
    "SuRFBuilder",
    "SuffixScheme",
    "SurfVariant",
    "Terminal",
    "TerminalKind",
    "TrieBackend",
    "build_pruned_trie",
    "choose_dense_levels",
    "lookup",
    "may_contain_range",
    "pruned_depths",
    "real_suffix_bits",
]
