"""Suffix-bit schemes of the SuRF variants (paper section 6.1, Figure 1).

SuRF-Base stores nothing per leaf; SuRF-Hash stores ``n`` bits of a hash of
the full key; SuRF-Real stores the first ``m`` bits of the key's suffix
beyond the pruned prefix.  A point query that reaches a terminal compares
the query's corresponding bits against the stored payload, trading a little
memory for a big FPR reduction — and, as section 10.3.3 shows, handing the
attacker longer effective prefixes in the SuRF-Real case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.filters.hashing import suffix_hash_bits


class SurfVariant(enum.Enum):
    """The three SuRF flavors of the paper."""

    BASE = "base"
    HASH = "hash"
    REAL = "real"


def real_suffix_bits(key: bytes, depth: int, num_bits: int) -> int:
    """First ``num_bits`` bits of ``key[depth:]``, zero-padded on the right.

    ``depth`` is the terminal's depth in bytes — the length of the pruned
    prefix including the distinguishing byte.  Keys shorter than the probed
    window contribute zero bits, which is exactly how a real bit-packed
    suffix array reads past a short key's end.
    """
    if num_bits == 0:
        return 0
    num_bytes = (num_bits + 7) // 8
    chunk = key[depth : depth + num_bytes]
    chunk = chunk + b"\x00" * (num_bytes - len(chunk))
    return int.from_bytes(chunk, "big") >> (8 * num_bytes - num_bits)


@dataclass(frozen=True)
class SuffixScheme:
    """Computes and compares per-leaf suffix payloads for one variant."""

    variant: SurfVariant
    num_bits: int = 8

    def __post_init__(self) -> None:
        if self.variant is SurfVariant.BASE:
            if self.num_bits:
                object.__setattr__(self, "num_bits", 0)
        elif not 0 < self.num_bits <= 64:
            raise ConfigError(
                f"suffix bits must be in [1, 64] for {self.variant.value}, "
                f"got {self.num_bits}"
            )

    def payload(self, full_key: bytes, depth: int) -> int:
        """Payload stored at a terminal of ``depth`` for ``full_key``."""
        if self.variant is SurfVariant.BASE:
            return 0
        if self.variant is SurfVariant.HASH:
            return suffix_hash_bits(full_key, self.num_bits)
        return real_suffix_bits(full_key, depth, self.num_bits)

    def matches(self, query: bytes, depth: int, payload: int) -> bool:
        """Whether a query reaching a terminal of ``depth`` passes."""
        if self.variant is SurfVariant.BASE:
            return True
        if self.variant is SurfVariant.HASH:
            return suffix_hash_bits(query, self.num_bits) == payload
        return real_suffix_bits(query, depth, self.num_bits) == payload

    def matcher(self):
        """Specialized ``(query, depth, payload) -> bool`` for hot loops.

        Same decisions as :meth:`matches` with the per-call variant
        dispatch hoisted out; the one-byte-window case (suffix bits <= 8,
        the standard configuration) avoids slicing entirely.  Batch
        lookups bind this once per batch.
        """
        if self.variant is SurfVariant.BASE:
            return lambda query, depth, payload: True
        num_bits = self.num_bits
        if self.variant is SurfVariant.HASH:
            return (lambda query, depth, payload:
                    suffix_hash_bits(query, num_bits) == payload)
        num_bytes = (num_bits + 7) // 8
        shift = 8 * num_bytes - num_bits
        if num_bytes == 1:
            return (lambda query, depth, payload:
                    ((query[depth] >> shift) if depth < len(query) else 0)
                    == payload)
        pad = b"\x00" * num_bytes
        from_bytes = int.from_bytes

        def real_matches(query: bytes, depth: int, payload: int) -> bool:
            chunk = query[depth:depth + num_bytes]
            if len(chunk) < num_bytes:
                chunk = chunk + pad[:num_bytes - len(chunk)]
            return (from_bytes(chunk, "big") >> shift) == payload

        return real_matches

    @property
    def label(self) -> str:
        """Short label for filter names and bench tables."""
        if self.variant is SurfVariant.BASE:
            return "base"
        return f"{self.variant.value}{self.num_bits}"
