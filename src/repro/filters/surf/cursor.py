"""Backend-agnostic trie traversal: the cursor protocol and shared queries.

Both SuRF backends (the dict-based reference trie and the succinct LOUDS
encoding) expose the same navigation primitives — root, child-by-label,
sorted children, terminal record — and the point-query and range-seek
algorithms below run over either.  Property tests exploit this: the two
backends must agree on every query for every key set.

Terminal semantics (see paper Figure 1): a LEAF terminal sits at the end of
a pruned path and represents "some stored key starts with this path"; a
PREFIX_KEY terminal marks a node whose path *is exactly* a stored key
(possible only when the key set is not prefix-free).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.filters.surf.suffix import SuffixScheme


class TerminalKind(enum.Enum):
    """How a terminal relates to its stored key."""

    LEAF = "leaf"  # stored key == path + unknown suffix
    PREFIX_KEY = "prefix_key"  # stored key == path exactly


@dataclass(frozen=True)
class Terminal:
    """Terminal record: kind plus the variant's suffix payload bits."""

    kind: TerminalKind
    payload: int


def lookup(backend, key: bytes, scheme: SuffixScheme) -> bool:
    """SuRF point query over any cursor backend.

    Returns True iff the path induced by ``key`` terminates at a node
    associated with a key (paper section 6.1) and the variant's suffix bits
    match.
    """
    node = backend.root()
    depth = 0
    key_len = len(key)
    while True:
        term = backend.terminal(node)
        if depth == key_len:
            # Query exhausted: positive only at a terminal whose suffix
            # bits are consistent with the (empty) remaining query suffix.
            return term is not None and scheme.matches(key, depth, term.payload)
        if term is not None and term.kind is TerminalKind.LEAF:
            # Pruned leaf: the stored key continues with an unknown suffix;
            # the suffix payload is the only remaining discriminator.
            return scheme.matches(key, depth, term.payload)
        child = backend.child(node, key[depth])
        if child is None:
            return False
        node = child
        depth += 1


class BatchCursor:
    """Resumable traversal state for sorted-batch point lookups.

    ``nodes[d]`` is the node reached after consuming ``d`` bytes of
    ``key`` — the path stack the next probe truncates to its common
    prefix with ``key`` instead of restarting from the root.
    """

    __slots__ = ("nodes", "key")

    def __init__(self, root) -> None:
        self.nodes: List[object] = [root]
        self.key = b""


def _common_prefix_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    if a[:n] == b[:n]:
        return n
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def lookup_many(backend, keys: Sequence[bytes],
                scheme: SuffixScheme) -> List[bool]:
    """Batched point queries over any cursor backend.

    Probes in sorted order, resuming each traversal from the deepest node
    of the previous probe's path that still lies on the new key's prefix
    (clamped to the depth the previous traversal actually reached).  The
    resumed node is by construction the node a root walk over the shared
    prefix would reach, so the verdict vector equals
    ``[lookup(backend, k, scheme) for k in keys]`` exactly — input order
    and duplicates included.
    """
    n = len(keys)
    verdicts = [False] * n
    state = BatchCursor(backend.root())
    nodes = state.nodes
    prev = state.key
    terminal = backend.terminal
    child = backend.child
    matches = scheme.matcher()
    leaf_kind = TerminalKind.LEAF
    for i in sorted(range(n), key=keys.__getitem__):
        key = keys[i]
        depth = _common_prefix_len(prev, key)
        top = len(nodes) - 1
        if depth > top:
            depth = top
        else:
            del nodes[depth + 1:]
        node = nodes[depth]
        key_len = len(key)
        while True:
            term = terminal(node)
            if depth == key_len:
                verdicts[i] = (term is not None
                               and matches(key, depth, term.payload))
                break
            if term is not None and term.kind is leaf_kind:
                verdicts[i] = matches(key, depth, term.payload)
                break
            nxt = child(node, key[depth])
            if nxt is None:
                break  # verdicts[i] stays False
            node = nxt
            depth += 1
            nodes.append(node)
        prev = key
    state.key = prev
    return verdicts


class _SeekOutcome(enum.Enum):
    FOUND = "found"
    AMBIGUOUS = "ambiguous"
    EXHAUSTED = "exhausted"


def may_contain_range(backend, low: bytes, high: bytes) -> bool:
    """SuRF range query ``[low, high]`` (inclusive) over any backend.

    Finds the smallest stored pruned prefix not provably below ``low``; the
    range may be non-empty iff that prefix is not provably above ``high``.
    Pruned leaves whose path is a proper prefix of ``low`` are *ambiguous*
    (the hidden suffix decides the comparison) and conservatively pass —
    the one-sided error the paper's section 2.3.1 permits.

    Suffix payload bits are deliberately not consulted here: they sharpen
    point queries only, keeping both backends' range answers identical and
    strictly one-sided.
    """
    if low > high:
        return False
    outcome, prefix = _seek_geq(backend, backend.root(), b"", low, 0)
    if outcome is _SeekOutcome.EXHAUSTED:
        return False
    if outcome is _SeekOutcome.AMBIGUOUS:
        return True
    # ``prefix`` >= low; some stored key starts with it.  Such a key can lie
    # in the range iff the prefix itself does not already exceed ``high``.
    return prefix <= high or high.startswith(prefix)


def _seek_geq(backend, node, path: bytes, low: bytes, depth: int
              ) -> Tuple[_SeekOutcome, bytes]:
    """Smallest terminal prefix in this subtree that is >= ``low``.

    ``path`` is the byte string leading to ``node``; ``depth == len(path)``.
    """
    if depth >= len(low):
        # Every terminal below starts with ``low``; take the leftmost.
        return _SeekOutcome.FOUND, _leftmost_terminal(backend, node, path)
    term = backend.terminal(node)
    if term is not None:
        if term.kind is TerminalKind.LEAF:
            # Stored key == path + hidden suffix, and path is a proper
            # prefix of ``low``: cannot order it against ``low``.
            return _SeekOutcome.AMBIGUOUS, path
        # PREFIX_KEY: stored key == path < low exactly; skip it.
    label = low[depth]
    child = backend.child(node, label)
    if child is not None:
        outcome, prefix = _seek_geq(
            backend, child, path + bytes([label]), low, depth + 1
        )
        if outcome is not _SeekOutcome.EXHAUSTED:
            return outcome, prefix
    sibling = backend.first_child_geq(node, label + 1)
    if sibling is not None:
        next_label, next_node = sibling
        return _SeekOutcome.FOUND, _leftmost_terminal(
            backend, next_node, path + bytes([next_label])
        )
    return _SeekOutcome.EXHAUSTED, b""


def _leftmost_terminal(backend, node, path: bytes) -> bytes:
    """Prefix of the in-order-first terminal in the subtree of ``node``.

    A terminal *at* a node (of either kind) precedes any terminal below it
    in lexicographic order, because every descendant prefix extends it.
    """
    while True:
        if backend.terminal(node) is not None:
            return path
        first = _first_child(backend, node)
        if first is None:
            # Structurally impossible in a well-formed pruned trie: every
            # childless node carries a terminal.  Guard for corrupt input.
            return path
        label, node = first
        path = path + bytes([label])


def _first_child(backend, node) -> Optional[Tuple[int, object]]:
    return backend.first_child_geq(node, 0)
