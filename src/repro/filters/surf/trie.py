"""Pruned-trie construction and the reference SuRF backend.

SuRF's core structure (paper section 6.1) is a trie pruned to the minimum
length prefixes that uniquely identify each key: the shared prefix plus one
distinguishing byte.  This module builds that pruned trie from a sorted key
list and exposes it through the *cursor* protocol
(:mod:`repro.filters.surf.cursor`), which both this dict-based reference
backend and the succinct LOUDS backend implement; the shared lookup and
range-seek algorithms run identically over either.

The reference backend stores only what a real SuRF stores — pruned paths
and per-terminal suffix payloads — so its query answers (including false
positives) are exactly those of the succinct encoding, just laid out in
Python dicts for speed and debuggability.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.keys import common_prefix_len
from repro.filters.surf.cursor import Terminal, TerminalKind
from repro.filters.surf.suffix import SuffixScheme


class TrieNode:
    """One pruned-trie node: sorted children plus an optional terminal."""

    __slots__ = ("children", "terminal", "_sorted_labels")

    def __init__(self) -> None:
        self.children: Dict[int, "TrieNode"] = {}
        self.terminal: Optional[Terminal] = None
        self._sorted_labels: Optional[List[int]] = None

    def freeze(self) -> None:
        """Cache sorted labels once construction finishes (build-once)."""
        self._sorted_labels = sorted(self.children)
        for child in self.children.values():
            child.freeze()

    @property
    def sorted_labels(self) -> List[int]:
        """Child labels in ascending order."""
        if self._sorted_labels is None:
            return sorted(self.children)
        return self._sorted_labels


def pruned_depths(sorted_keys: Sequence[bytes]) -> List[int]:
    """Pruned-prefix length (in bytes) for each key of a sorted unique list.

    A key's pruned depth is one byte past its longest common prefix with
    either neighbor, capped at the key's own length (keys that are prefixes
    of other keys terminate at internal nodes).
    """
    n = len(sorted_keys)
    depths: List[int] = []
    for i, key in enumerate(sorted_keys):
        lcp = 0
        if i > 0:
            lcp = max(lcp, common_prefix_len(key, sorted_keys[i - 1]))
        if i + 1 < n:
            lcp = max(lcp, common_prefix_len(key, sorted_keys[i + 1]))
        depths.append(min(len(key), lcp + 1))
    return depths


def build_pruned_trie(sorted_keys: Sequence[bytes], scheme: SuffixScheme) -> TrieNode:
    """Build the pruned trie with per-terminal suffix payloads.

    ``sorted_keys`` must be sorted and duplicate-free (the SSTable builder
    guarantees this); violations raise :class:`ConfigError` because a
    mis-sorted input would silently corrupt the pruning.
    """
    for i in range(1, len(sorted_keys)):
        if sorted_keys[i - 1] >= sorted_keys[i]:
            raise ConfigError("keys must be sorted and unique for trie construction")
    root = TrieNode()
    for key, depth in zip(sorted_keys, pruned_depths(sorted_keys)):
        node = root
        for byte in key[:depth]:
            child = node.children.get(byte)
            if child is None:
                child = TrieNode()
                node.children[byte] = child
            node = child
        kind = TerminalKind.LEAF
        # The terminal may gain children from longer keys inserted later;
        # the kind is finalized in a second pass below.
        node.terminal = Terminal(kind, scheme.payload(key, depth))
    _finalize_kinds(root)
    root.freeze()
    return root


def _finalize_kinds(node: TrieNode) -> None:
    if node.terminal is not None and node.children:
        node.terminal = Terminal(TerminalKind.PREFIX_KEY, node.terminal.payload)
    for child in node.children.values():
        _finalize_kinds(child)


class TrieBackend:
    """Cursor-protocol view over the pruned trie (reference backend)."""

    backend_name = "trie"

    def __init__(self, root: TrieNode) -> None:
        self._root = root
        self._counts = _count_stats(root)

    @classmethod
    def build(cls, sorted_keys: Sequence[bytes], scheme: SuffixScheme) -> "TrieBackend":
        """Build from sorted unique keys."""
        return cls(build_pruned_trie(sorted_keys, scheme))

    # -------------------------------------------------------------- cursor API

    def root(self) -> TrieNode:
        """Root node reference."""
        return self._root

    def child(self, node: TrieNode, label: int) -> Optional[TrieNode]:
        """Child of ``node`` along ``label``, or None."""
        return node.children.get(label)

    def terminal(self, node: TrieNode) -> Optional[Terminal]:
        """Terminal record of ``node`` (leaf or prefix-key), or None."""
        return node.terminal

    def has_children(self, node: TrieNode) -> bool:
        """Whether ``node`` is internal."""
        return bool(node.children)

    def children_sorted(self, node: TrieNode) -> Iterator[Tuple[int, TrieNode]]:
        """Children in ascending label order."""
        for label in node.sorted_labels:
            yield label, node.children[label]

    def first_child_geq(self, node: TrieNode, label: int
                        ) -> Optional[Tuple[int, TrieNode]]:
        """Smallest child with label >= ``label``, or None."""
        labels = node.sorted_labels
        # Binary search over the small sorted label list.
        lo, hi = 0, len(labels)
        while lo < hi:
            mid = (lo + hi) // 2
            if labels[mid] < label:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(labels):
            return None
        found = labels[lo]
        return found, node.children[found]

    # ------------------------------------------------------------ batch lookup

    def lookup_many(self, keys: Sequence[bytes],
                    scheme: SuffixScheme) -> List[bool]:
        """De-virtualized batched point lookups over the dict trie.

        Same algorithm as :func:`repro.filters.surf.cursor.lookup_many`
        (sorted probes, shared-prefix path-stack resume) with the cursor
        protocol inlined to direct ``children.get``/``terminal``
        attribute access.  Verdicts are exactly the scalar loop's.
        """
        n = len(keys)
        verdicts = [False] * n
        matches = scheme.matcher()
        leaf_kind = TerminalKind.LEAF
        nodes = [self._root]
        prev = b""
        prev_len = 0
        top = 0  # == len(nodes) - 1, maintained across keys
        for i in sorted(range(n), key=keys.__getitem__):
            key = keys[i]
            key_len = len(key)
            limit = prev_len if prev_len < key_len else key_len
            if limit > top:
                limit = top
            if prev[:limit] == key[:limit]:
                depth = limit
            else:
                depth = 0
                while prev[depth] == key[depth]:
                    depth += 1
            if depth < top:
                del nodes[depth + 1:]
            node = nodes[depth]
            verdict = False
            while True:
                term = node.terminal
                if depth == key_len:
                    verdict = (term is not None
                               and matches(key, depth, term.payload))
                    break
                if term is not None and term.kind is leaf_kind:
                    verdict = matches(key, depth, term.payload)
                    break
                nxt = node.children.get(key[depth])
                if nxt is None:
                    break
                node = nxt
                depth += 1
                nodes.append(node)
            verdicts[i] = verdict
            prev = key
            prev_len = key_len
            top = depth
        return verdicts

    # ------------------------------------------------------------------ sizing

    def memory_bits(self, suffix_bits: int) -> int:
        """Estimated size of the equivalent succinct encoding.

        The dict-of-dicts layout exists for speed; for space reporting we
        charge the LOUDS-Sparse cost the same trie would occupy: 10 bits
        per label (8-bit label + HasChild + LOUDS) plus the suffix payload
        per terminal.  The LOUDS backend reports its measured size instead.
        """
        labels, terminals = self._counts
        return 10 * labels + suffix_bits * terminals

    @property
    def num_terminals(self) -> int:
        """Number of stored (pruned) keys."""
        return self._counts[1]


def _count_stats(root: TrieNode) -> Tuple[int, int]:
    """(total labels/edges, total terminals) of the trie."""
    labels = 0
    terminals = 0
    stack = [root]
    while stack:
        node = stack.pop()
        labels += len(node.children)
        if node.terminal is not None:
            terminals += 1
        stack.extend(node.children.values())
    return labels, terminals
