"""Public SuRF facade: variants, backends, and the LSM filter builder."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.common.errors import ConfigError
from repro.filters.base import FilterBuilder, RangeFilter
from repro.filters.surf import cursor
from repro.filters.surf.louds import LoudsBackend
from repro.filters.surf.suffix import SuffixScheme, SurfVariant
from repro.filters.surf.trie import TrieBackend


class SuRF(RangeFilter):
    """Succinct Range Filter (paper section 6.1).

    Immutable: built once from the sorted keys of an SSTable.  The
    ``backend`` argument selects the layout — ``"trie"`` (reference
    dict-trie, fastest in pure Python; size reported as the equivalent
    succinct estimate) or ``"louds"`` (actual LOUDS-DENSE/SPARSE succinct
    encoding) — without changing a single query answer.
    """

    def __init__(self, backend, scheme: SuffixScheme, num_keys: int) -> None:
        super().__init__()
        self._backend = backend
        self.scheme = scheme
        self.num_keys = num_keys
        self.name = f"surf-{scheme.label}[{backend.backend_name}]"

    @classmethod
    def build(cls, sorted_keys: Sequence[bytes],
              variant: Union[SurfVariant, str] = SurfVariant.REAL,
              suffix_bits: int = 8,
              backend: str = "trie",
              num_dense_levels: Optional[int] = None) -> "SuRF":
        """Build a SuRF over sorted unique keys."""
        if isinstance(variant, str):
            variant = SurfVariant(variant)
        scheme = SuffixScheme(variant, suffix_bits)
        if backend == "trie":
            built = TrieBackend.build(sorted_keys, scheme)
        elif backend == "louds":
            built = LoudsBackend.build(sorted_keys, scheme,
                                       num_dense_levels=num_dense_levels)
        else:
            raise ConfigError(f"unknown SuRF backend {backend!r}")
        return cls(built, scheme, len(sorted_keys))

    @property
    def variant(self) -> SurfVariant:
        """Which SuRF variant this filter is."""
        return self.scheme.variant

    @property
    def backend(self):
        """The underlying cursor backend (tests, attack oracle)."""
        return self._backend

    def _may_contain(self, key: bytes) -> bool:
        return cursor.lookup(self._backend, key, self.scheme)

    def _may_contain_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Sorted batch with shared-prefix cursor reuse.

        The LOUDS backend supplies a de-virtualized traversal core; other
        backends go through the generic cursor-protocol version.  Both
        return exactly the scalar loop's verdicts.
        """
        keys = list(keys)
        backend_batch = getattr(self._backend, "lookup_many", None)
        if backend_batch is not None:
            return backend_batch(keys, self.scheme)
        return cursor.lookup_many(self._backend, keys, self.scheme)

    def _may_contain_range(self, low: bytes, high: bytes) -> bool:
        return cursor.may_contain_range(self._backend, low, high)

    def memory_bits(self) -> int:
        """Succinct size (measured for louds, estimated for trie)."""
        return self._backend.memory_bits(self.scheme.num_bits)


class SuRFBuilder(FilterBuilder):
    """Builds one SuRF per SSTable — the paper's RocksDB+SuRF configuration."""

    def __init__(self, variant: Union[SurfVariant, str] = SurfVariant.REAL,
                 suffix_bits: int = 8, backend: str = "trie",
                 num_dense_levels: Optional[int] = None) -> None:
        if isinstance(variant, str):
            variant = SurfVariant(variant)
        # Validate eagerly so a bad configuration fails at setup time.
        self._scheme = SuffixScheme(variant, suffix_bits)
        self.variant = variant
        self.suffix_bits = self._scheme.num_bits
        self.backend = backend
        self.num_dense_levels = num_dense_levels
        if backend not in ("trie", "louds"):
            raise ConfigError(f"unknown SuRF backend {backend!r}")

    @property
    def name(self) -> str:
        return f"surf-{self._scheme.label}[{self.backend}]"

    def build(self, sorted_keys: Sequence[bytes]) -> SuRF:
        return SuRF.build(sorted_keys, variant=self.variant,
                          suffix_bits=self.suffix_bits, backend=self.backend,
                          num_dense_levels=self.num_dense_levels)
