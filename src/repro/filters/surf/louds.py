"""Succinct LOUDS-DENSE/SPARSE encoding of the pruned trie.

This backend reproduces the memory layout of the original SuRF (Zhang et
al., SIGMOD 2018) that the paper's attacks target:

* **LOUDS-Dense** (upper levels, optimized for speed): per node, a 256-bit
  label bitmap ``D-Labels``, a 256-bit ``D-HasChild`` bitmap marking which
  edges lead to internal nodes, and one ``D-IsPrefixKey`` bit.
* **LOUDS-Sparse** (lower levels, optimized for space): a byte array
  ``S-Labels``, a bitvector ``S-HasChild``, and ``S-LOUDS`` marking the
  first label of each node.  (The original encodes prefix keys with a
  0xFF terminator label, which mis-answers keys genuinely containing 0xFF
  at branch points; we store an explicit per-node ``S-IsPrefixKey``
  bitvector instead — same asymptotics, exact semantics.)

Nodes are numbered in level order; child pointers are *computed* with
rank/select over the structural bitmaps rather than stored.  Suffix
payloads live in four value arrays (dense/sparse x leaf/prefix-key),
indexed by the same rank expressions the queries use.

The backend implements the cursor protocol of
:mod:`repro.filters.surf.cursor`; property tests assert it agrees with the
reference dict-trie backend on every query.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.filters.bitarray import popcount as _popcount
from repro.filters.rank_select import BitVector
from repro.filters.surf import cursor as _cursor
from repro.filters.surf.cursor import Terminal, TerminalKind
from repro.filters.surf.suffix import SuffixScheme
from repro.filters.surf.trie import TrieBackend, TrieNode, build_pruned_trie

#: Bits one dense node costs: two 256-bit bitmaps + the prefix-key bit.
_DENSE_NODE_BITS = 2 * 256 + 1
#: Bits one sparse label costs: 8-bit label + HasChild + LOUDS bits.
_SPARSE_LABEL_BITS = 10
#: Default dense-vs-sparse size ratio cutoff (SuRF's R parameter).
DEFAULT_DENSE_RATIO = 16

# Cursor node-reference kinds.
_DENSE_NODE = 0
_SPARSE_NODE = 1
_DENSE_LEAF = 2
_SPARSE_LEAF = 3
_ROOT_ONLY = 4

_WORD_MASK = (1 << 64) - 1


class _BitWriter:
    """Accumulates bits into 64-bit words for :meth:`BitVector.from_words`.

    Construction-time counterpart of the bitvector's packed layout: the
    builder appends bits here and finishes into a :class:`BitVector`
    without materializing a Python-bool list per bit.
    """

    __slots__ = ("words", "length", "_current")

    def __init__(self) -> None:
        self.words: List[int] = []
        self.length = 0
        self._current = 0

    def append(self, bit: bool) -> None:
        if bit:
            self._current |= 1 << (self.length & 63)
        self.length += 1
        if not self.length & 63:
            self.words.append(self._current)
            self._current = 0

    def finish(self) -> BitVector:
        words = self.words
        if self.length & 63:
            words = words + [self._current]
        return BitVector.from_words(words, self.length)


def choose_dense_levels(level_nodes: Sequence[int], level_labels: Sequence[int],
                        ratio: int = DEFAULT_DENSE_RATIO) -> int:
    """Pick how many top levels to encode densely.

    Grows the dense region while its cumulative bitmap cost stays within
    ``ratio`` times cheaper than... precisely: while adding the next level
    keeps ``dense_bits * ratio <= total_sparse_bits_of_those_levels_saved``
    in SuRF's spirit — the dense encoding of a level pays off when the
    level is densely branching.  Concretely we include level ``l`` while
    the dense cost of levels ``0..l`` is at most ``ratio`` times their
    sparse cost, which includes the root for any non-degenerate trie and
    stops as soon as branching thins out.
    """
    dense_bits = 0
    sparse_bits = 0
    chosen = 0
    for nodes, labels in zip(level_nodes, level_labels):
        dense_bits += nodes * _DENSE_NODE_BITS
        sparse_bits += labels * _SPARSE_LABEL_BITS
        if dense_bits <= ratio * sparse_bits:
            chosen += 1
        else:
            break
    return chosen


class LoudsBackend:
    """Succinct SuRF backend (cursor protocol)."""

    backend_name = "louds"

    def __init__(self, trie_root: TrieNode,
                 num_dense_levels: Optional[int] = None,
                 dense_ratio: int = DEFAULT_DENSE_RATIO) -> None:
        self._build(trie_root, num_dense_levels, dense_ratio)

    @classmethod
    def build(cls, sorted_keys: Sequence[bytes], scheme: SuffixScheme,
              num_dense_levels: Optional[int] = None) -> "LoudsBackend":
        """Build directly from sorted unique keys."""
        return cls(build_pruned_trie(sorted_keys, scheme),
                   num_dense_levels=num_dense_levels)

    @classmethod
    def from_trie(cls, trie: TrieBackend,
                  num_dense_levels: Optional[int] = None) -> "LoudsBackend":
        """Encode an existing reference backend's trie."""
        return cls(trie.root(), num_dense_levels=num_dense_levels)

    # ------------------------------------------------------------------ build

    def _build(self, root: TrieNode, num_dense_levels: Optional[int],
               dense_ratio: int) -> None:
        self._root_terminal: Optional[Terminal] = None
        if not root.children:
            # Degenerate tries (empty, or a lone empty-key terminal) have no
            # internal nodes to encode; serve them from a sentinel root.
            self._root_terminal = root.terminal
            self._num_dense = 0
            self._empty = True
            self._init_empty_structures()
            return
        self._empty = False

        # BFS over internal nodes, tracking levels.
        levels: List[List[TrieNode]] = []
        frontier = [root]
        while frontier:
            levels.append(frontier)
            nxt: List[TrieNode] = []
            for node in frontier:
                for label in node.sorted_labels:
                    child = node.children[label]
                    if child.children:
                        nxt.append(child)
            frontier = nxt
        level_nodes = [len(level) for level in levels]
        level_labels = [sum(len(n.children) for n in level) for level in levels]
        if num_dense_levels is None:
            num_dense_levels = choose_dense_levels(level_nodes, level_labels,
                                                   dense_ratio)
        num_dense_levels = max(0, min(num_dense_levels, len(levels)))
        self._num_dense = sum(level_nodes[:num_dense_levels])

        # Dense rows are 256 bits per node, word-aligned by construction:
        # accumulate each row as an int bitmap and emit its four 64-bit
        # words directly.  The irregular bit streams go through a word
        # accumulator.  Either way the resulting BitVector is identical
        # to one built bool-at-a-time; only construction cost changes.
        d_labels_words: List[int] = []
        d_haschild_words: List[int] = []
        num_dense_rows = 0
        d_isprefix = _BitWriter()
        d_leaf_payloads: List[int] = []
        d_prefix_payloads: List[int] = []
        s_labels = bytearray()
        s_haschild = _BitWriter()
        s_louds = _BitWriter()
        s_isprefix = _BitWriter()
        s_leaf_payloads: List[int] = []
        s_prefix_payloads: List[int] = []

        for level_index, level in enumerate(levels):
            dense = level_index < num_dense_levels
            for node in level:
                term = node.terminal
                is_prefix = term is not None and term.kind is TerminalKind.PREFIX_KEY
                if dense:
                    d_isprefix.append(is_prefix)
                    if is_prefix:
                        d_prefix_payloads.append(term.payload)
                    row_labels = 0
                    row_haschild = 0
                    for label in node.sorted_labels:
                        child = node.children[label]
                        row_labels |= 1 << label
                        if child.children:
                            row_haschild |= 1 << label
                        else:
                            d_leaf_payloads.append(child.terminal.payload)
                    for shift in (0, 64, 128, 192):
                        d_labels_words.append((row_labels >> shift) & _WORD_MASK)
                        d_haschild_words.append((row_haschild >> shift) & _WORD_MASK)
                    num_dense_rows += 1
                else:
                    s_isprefix.append(is_prefix)
                    if is_prefix:
                        s_prefix_payloads.append(term.payload)
                    first = True
                    for label in node.sorted_labels:
                        child = node.children[label]
                        s_labels.append(label)
                        s_louds.append(first)
                        first = False
                        has_child = bool(child.children)
                        s_haschild.append(has_child)
                        if not has_child:
                            s_leaf_payloads.append(child.terminal.payload)

        self._d_labels = BitVector.from_words(d_labels_words, 256 * num_dense_rows)
        self._d_haschild = BitVector.from_words(d_haschild_words,
                                                256 * num_dense_rows)
        self._d_isprefix = d_isprefix.finish()
        self._d_leaf_payloads = d_leaf_payloads
        self._d_prefix_payloads = d_prefix_payloads
        self._s_labels = bytes(s_labels)
        self._s_haschild = s_haschild.finish()
        self._s_louds = s_louds.finish()
        self._s_isprefix = s_isprefix.finish()
        self._s_leaf_payloads = s_leaf_payloads
        self._s_prefix_payloads = s_prefix_payloads
        self._num_sparse = s_isprefix.length
        dense_internal_edges = self._d_haschild.ones
        if self._num_dense == 0:
            # Root itself is sparse node 0; sparse-edge children start at 1.
            self._first_sparse_child = 1
        else:
            self._first_sparse_child = dense_internal_edges - (self._num_dense - 1)
        # Precompute sparse node boundaries for fast label search.
        self._s_node_start = [0] * self._num_sparse
        for s in range(self._num_sparse):
            self._s_node_start[s] = (
                self._s_louds.select1(s + 1) if self._num_sparse else 0
            )
        self._s_node_start.append(len(self._s_labels))

    def _init_empty_structures(self) -> None:
        self._d_labels = BitVector([])
        self._d_haschild = BitVector([])
        self._d_isprefix = BitVector([])
        self._d_leaf_payloads: List[int] = []
        self._d_prefix_payloads: List[int] = []
        self._s_labels = b""
        self._s_haschild = BitVector([])
        self._s_louds = BitVector([])
        self._s_isprefix = BitVector([])
        self._s_leaf_payloads: List[int] = []
        self._s_prefix_payloads: List[int] = []
        self._num_sparse = 0
        self._first_sparse_child = 1
        self._s_node_start = [0]

    # ------------------------------------------------------------- cursor API

    def root(self) -> Tuple[int, int]:
        """Root node reference."""
        if self._empty:
            return (_ROOT_ONLY, 0)
        if self._num_dense:
            return (_DENSE_NODE, 0)
        return (_SPARSE_NODE, 0)

    def terminal(self, ref: Tuple[int, int]) -> Optional[Terminal]:
        """Terminal record at ``ref``, or None."""
        kind, index = ref
        if kind == _DENSE_NODE:
            if self._d_isprefix.get(index):
                payload = self._d_prefix_payloads[
                    self._d_isprefix.rank1(index + 1) - 1
                ]
                return Terminal(TerminalKind.PREFIX_KEY, payload)
            return None
        if kind == _SPARSE_NODE:
            if self._s_isprefix.get(index):
                payload = self._s_prefix_payloads[
                    self._s_isprefix.rank1(index + 1) - 1
                ]
                return Terminal(TerminalKind.PREFIX_KEY, payload)
            return None
        if kind == _DENSE_LEAF:
            ordinal = (
                self._d_labels.rank1(index + 1)
                - self._d_haschild.rank1(index + 1)
                - 1
            )
            return Terminal(TerminalKind.LEAF, self._d_leaf_payloads[ordinal])
        if kind == _SPARSE_LEAF:
            ordinal = (index + 1) - self._s_haschild.rank1(index + 1) - 1
            return Terminal(TerminalKind.LEAF, self._s_leaf_payloads[ordinal])
        return self._root_terminal

    def child(self, ref: Tuple[int, int], label: int) -> Optional[Tuple[int, int]]:
        """Child of ``ref`` along ``label`` (may be a leaf reference)."""
        kind, index = ref
        if kind == _DENSE_NODE:
            pos = (index << 8) | label
            if not self._d_labels.get(pos):
                return None
            if not self._d_haschild.get(pos):
                return (_DENSE_LEAF, pos)
            return self._dense_child_ref(pos)
        if kind == _SPARSE_NODE:
            start = self._s_node_start[index]
            end = self._s_node_start[index + 1]
            pos = bisect_left(self._s_labels, label, start, end)
            if pos == end or self._s_labels[pos] != label:
                return None
            if not self._s_haschild.get(pos):
                return (_SPARSE_LEAF, pos)
            return self._sparse_child_ref(pos)
        return None

    def has_children(self, ref: Tuple[int, int]) -> bool:
        """Whether the reference denotes an internal node."""
        return ref[0] in (_DENSE_NODE, _SPARSE_NODE)

    def children_sorted(self, ref: Tuple[int, int]
                        ) -> Iterator[Tuple[int, Tuple[int, int]]]:
        """Children in ascending label order."""
        nxt = self.first_child_geq(ref, 0)
        while nxt is not None:
            label, child_ref = nxt
            yield label, child_ref
            nxt = self.first_child_geq(ref, label + 1)

    def first_child_geq(self, ref: Tuple[int, int], label: int
                        ) -> Optional[Tuple[int, Tuple[int, int]]]:
        """Smallest child with label >= ``label``, or None."""
        if label > 255:
            return None
        kind, index = ref
        if kind == _DENSE_NODE:
            pos = (index << 8) | label
            node_end = (index + 1) << 8
            ones_before = self._d_labels.rank1(pos)
            if ones_before >= self._d_labels.ones:
                return None
            nxt = self._d_labels.select1(ones_before + 1)
            if nxt >= node_end:
                return None
            found_label = nxt & 0xFF
            if not self._d_haschild.get(nxt):
                return found_label, (_DENSE_LEAF, nxt)
            return found_label, self._dense_child_ref(nxt)
        if kind == _SPARSE_NODE:
            start = self._s_node_start[index]
            end = self._s_node_start[index + 1]
            pos = bisect_left(self._s_labels, label, start, end)
            if pos == end:
                return None
            found_label = self._s_labels[pos]
            if not self._s_haschild.get(pos):
                return found_label, (_SPARSE_LEAF, pos)
            return found_label, self._sparse_child_ref(pos)
        return None

    # ------------------------------------------------------------ batch lookup

    def lookup_many(self, keys: Sequence[bytes],
                    scheme: SuffixScheme) -> List[bool]:
        """De-virtualized batched point lookups.

        Same algorithm as :func:`repro.filters.surf.cursor.lookup_many`
        (sorted probes, shared-prefix path-stack resume) but with the
        cursor protocol inlined: the structural bitmaps' packed words and
        precomputed popcount directories are bound to locals, every
        ``rank1``/``get`` becomes one index plus one popcount, and node
        references live in two parallel int stacks instead of tuples.
        The verdict vector is exactly the scalar loop's.
        """
        if self._empty:
            return _cursor.lookup_many(self, list(keys), scheme)

        # Locals-bound structure views (see BitVector.rank_directory).
        dl_words = self._d_labels.words
        dl_rank = self._d_labels.rank_directory
        dh_words = self._d_haschild.words
        dh_rank = self._d_haschild.rank_directory
        dip_words = self._d_isprefix.words
        dip_rank = self._d_isprefix.rank_directory
        sh_words = self._s_haschild.words
        sh_rank = self._s_haschild.rank_directory
        sip_words = self._s_isprefix.words
        sip_rank = self._s_isprefix.rank_directory
        s_labels = self._s_labels
        s_node_start = self._s_node_start
        d_leaf_payloads = self._d_leaf_payloads
        d_prefix_payloads = self._d_prefix_payloads
        s_leaf_payloads = self._s_leaf_payloads
        s_prefix_payloads = self._s_prefix_payloads
        num_dense = self._num_dense
        first_sparse_child = self._first_sparse_child
        matches = scheme.matcher()
        popcount = _popcount
        bisect = bisect_left

        n = len(keys)
        verdicts = [False] * n
        root_kind = _DENSE_NODE if num_dense else _SPARSE_NODE
        kinds = [root_kind]
        idxs = [0]
        prev = b""
        prev_len = 0
        top = 0  # == len(kinds) - 1, maintained across keys
        for i in sorted(range(n), key=keys.__getitem__):
            key = keys[i]
            key_len = len(key)
            # Resume depth: lcp(prev, key) clamped to the depth actually
            # reached for ``prev`` (== top), computed without a full lcp
            # when the clamped windows already match.
            limit = prev_len if prev_len < key_len else key_len
            if limit > top:
                limit = top
            if prev[:limit] == key[:limit]:
                depth = limit
            else:
                depth = 0
                while prev[depth] == key[depth]:
                    depth += 1
            if depth < top:
                del kinds[depth + 1:]
                del idxs[depth + 1:]
            kind = kinds[depth]
            index = idxs[depth]
            verdict = False
            while True:
                if kind == _DENSE_NODE:
                    if depth == key_len:
                        if (dip_words[index >> 6] >> (index & 63)) & 1:
                            p1 = index + 1
                            w, o = p1 >> 6, p1 & 63
                            r = dip_rank[w]
                            if o:
                                r += popcount(dip_words[w] & ((1 << o) - 1))
                            verdict = matches(key, depth,
                                              d_prefix_payloads[r - 1])
                        break
                    pos = (index << 8) | key[depth]
                    if not (dl_words[pos >> 6] >> (pos & 63)) & 1:
                        break
                    if (dh_words[pos >> 6] >> (pos & 63)) & 1:
                        p1 = pos + 1
                        w, o = p1 >> 6, p1 & 63
                        r = dh_rank[w]
                        if o:
                            r += popcount(dh_words[w] & ((1 << o) - 1))
                        if r < num_dense:
                            kind, index = _DENSE_NODE, r
                        else:
                            kind, index = _SPARSE_NODE, r - num_dense
                    else:
                        kind, index = _DENSE_LEAF, pos
                elif kind == _SPARSE_NODE:
                    if depth == key_len:
                        if (sip_words[index >> 6] >> (index & 63)) & 1:
                            p1 = index + 1
                            w, o = p1 >> 6, p1 & 63
                            r = sip_rank[w]
                            if o:
                                r += popcount(sip_words[w] & ((1 << o) - 1))
                            verdict = matches(key, depth,
                                              s_prefix_payloads[r - 1])
                        break
                    start = s_node_start[index]
                    end = s_node_start[index + 1]
                    pos = bisect(s_labels, key[depth], start, end)
                    if pos == end or s_labels[pos] != key[depth]:
                        break
                    if (sh_words[pos >> 6] >> (pos & 63)) & 1:
                        p1 = pos + 1
                        w, o = p1 >> 6, p1 & 63
                        r = sh_rank[w]
                        if o:
                            r += popcount(sh_words[w] & ((1 << o) - 1))
                        kind, index = _SPARSE_NODE, first_sparse_child + r - 1
                    else:
                        kind, index = _SPARSE_LEAF, pos
                elif kind == _DENSE_LEAF:
                    p1 = index + 1
                    w, o = p1 >> 6, p1 & 63
                    rl = dl_rank[w]
                    rh = dh_rank[w]
                    if o:
                        mask = (1 << o) - 1
                        rl += popcount(dl_words[w] & mask)
                        rh += popcount(dh_words[w] & mask)
                    verdict = matches(key, depth,
                                      d_leaf_payloads[rl - rh - 1])
                    break
                else:  # _SPARSE_LEAF
                    p1 = index + 1
                    w, o = p1 >> 6, p1 & 63
                    rh = sh_rank[w]
                    if o:
                        rh += popcount(sh_words[w] & ((1 << o) - 1))
                    verdict = matches(key, depth, s_leaf_payloads[p1 - rh - 1])
                    break
                depth += 1
                kinds.append(kind)
                idxs.append(index)
            verdicts[i] = verdict
            prev = key
            prev_len = key_len
            top = depth
        return verdicts

    # --------------------------------------------------------------- internals

    def _dense_child_ref(self, pos: int) -> Tuple[int, int]:
        child_global = self._d_haschild.rank1(pos + 1)
        if child_global < self._num_dense:
            return (_DENSE_NODE, child_global)
        return (_SPARSE_NODE, child_global - self._num_dense)

    def _sparse_child_ref(self, pos: int) -> Tuple[int, int]:
        child = self._first_sparse_child + self._s_haschild.rank1(pos + 1) - 1
        return (_SPARSE_NODE, child)

    # ------------------------------------------------------------------ sizing

    def memory_bits(self, suffix_bits: int) -> int:
        """Measured size of the succinct structures and payload arrays."""
        payloads = (
            len(self._d_leaf_payloads)
            + len(self._d_prefix_payloads)
            + len(self._s_leaf_payloads)
            + len(self._s_prefix_payloads)
        )
        return (
            self._d_labels.memory_bits()
            + self._d_haschild.memory_bits()
            + self._d_isprefix.memory_bits()
            + self._s_haschild.memory_bits()
            + self._s_louds.memory_bits()
            + self._s_isprefix.memory_bits()
            + 8 * len(self._s_labels)
            + suffix_bits * payloads
        )

    @property
    def num_dense_nodes(self) -> int:
        """Internal nodes encoded densely."""
        return self._num_dense

    @property
    def num_sparse_nodes(self) -> int:
        """Internal nodes encoded sparsely."""
        return self._num_sparse

    def __getstate__(self):
        raise ConfigError("LoudsBackend is not picklable; rebuild from keys")
