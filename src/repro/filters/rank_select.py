"""Succinct bitvector with O(1) rank and sampled select.

LOUDS-encoded tries (the SuRF backend in
:mod:`repro.filters.surf.louds`) navigate exclusively through ``rank1``
and ``select1`` queries over their structural bitmaps; this module provides
those operations with the standard two-level acceleration: cumulative
popcounts per 64-bit word for rank, and a position sample every
``SELECT_SAMPLE`` ones for select.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.errors import ConfigError
from repro.filters.bitarray import popcount as _popcount

_WORD_BITS = 64
#: One select sample is kept per this many set bits.
SELECT_SAMPLE = 64


class BitVector:
    """Immutable bitvector supporting rank/select.

    Built once from an iterable of booleans; construction precomputes the
    rank directory.  ``rank1(i)`` counts set bits in ``[0, i)`` and
    ``select1(r)`` returns the position of the r-th set bit (r >= 1).
    """

    def __init__(self, bits: Iterable[bool]) -> None:
        words: List[int] = []
        length = 0
        current = 0
        for bit in bits:
            if bit:
                current |= 1 << (length % _WORD_BITS)
            length += 1
            if length % _WORD_BITS == 0:
                words.append(current)
                current = 0
        if length % _WORD_BITS:
            words.append(current)
        self._init_from_words(words, length)

    @classmethod
    def from_words(cls, words: Iterable[int], length: int) -> "BitVector":
        """Build from pre-packed 64-bit words (LSB-first within a word).

        The fast path for builders that can assemble whole words (the
        LOUDS construction): skips the per-bool accumulation loop of
        ``__init__`` while producing an identical structure.  ``words``
        must hold exactly ``ceil(length / 64)`` entries; bits at or above
        ``length`` in the final word must be clear.
        """
        words = list(words)
        if length < 0:
            raise ConfigError("bit length must be non-negative")
        expected = (length + _WORD_BITS - 1) // _WORD_BITS
        if len(words) != expected:
            raise ConfigError(
                f"{len(words)} words cannot hold {length} bits "
                f"(expected {expected})")
        tail = length % _WORD_BITS
        if words:
            if not all(0 <= word < (1 << _WORD_BITS) for word in words):
                raise ConfigError("words must be unsigned 64-bit values")
            if tail and words[-1] >> tail:
                raise ConfigError("bits beyond the declared length must be clear")
        self = cls.__new__(cls)
        self._init_from_words(words, length)
        return self

    def _init_from_words(self, words: List[int], length: int) -> None:
        self._words = words
        self._length = length
        # Cumulative set-bit count *before* each word.
        self._rank_dir: List[int] = [0] * (len(words) + 1)
        for i, word in enumerate(words):
            self._rank_dir[i + 1] = self._rank_dir[i] + _popcount(word)
        self._ones = self._rank_dir[-1]
        # Sampled select: position of the (SELECT_SAMPLE*j + 1)-th one.
        self._select_samples: List[int] = []
        seen = 0
        for pos in self._iter_ones():
            if seen % SELECT_SAMPLE == 0:
                self._select_samples.append(pos)
            seen += 1

    def _iter_ones(self):
        for wi, word in enumerate(self._words):
            base = wi * _WORD_BITS
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low

    def __len__(self) -> int:
        return self._length

    @property
    def ones(self) -> int:
        """Total number of set bits."""
        return self._ones

    @property
    def words(self) -> List[int]:
        """The packed 64-bit payload words (LSB-first within a word).

        Exposed (read-only by convention) so batched traversal cores can
        bind the raw list to a local and inline bit tests without a
        method call per probe.
        """
        return self._words

    @property
    def rank_directory(self) -> List[int]:
        """Precomputed popcount directory: set bits *before* each word.

        ``rank_directory[w] + popcount(words[w] & mask)`` is the whole of
        ``rank1`` — de-virtualized cores (the LOUDS batch probe path)
        consume these two lists directly instead of calling :meth:`rank1`
        per node transition.
        """
        return self._rank_dir

    def get(self, index: int) -> bool:
        """Bit at ``index``."""
        if not 0 <= index < self._length:
            raise ConfigError(f"bit index {index} out of range [0, {self._length})")
        return bool(self._words[index >> 6] >> (index & 63) & 1)

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def rank1(self, index: int) -> int:
        """Number of set bits in ``[0, index)``; ``index`` may equal len."""
        if not 0 <= index <= self._length:
            raise ConfigError(f"rank index {index} out of range [0, {self._length}]")
        word_index, offset = index >> 6, index & 63
        count = self._rank_dir[word_index]
        if offset:
            mask = (1 << offset) - 1
            count += _popcount(self._words[word_index] & mask)
        return count

    def rank0(self, index: int) -> int:
        """Number of clear bits in ``[0, index)``."""
        return index - self.rank1(index)

    def select1(self, rank: int) -> int:
        """Position of the ``rank``-th set bit (1-indexed)."""
        if not 1 <= rank <= self._ones:
            raise ConfigError(f"select rank {rank} out of range [1, {self._ones}]")
        # Start from the nearest sample at or before the target, then scan
        # forward one set bit at a time.
        sample_index = (rank - 1) // SELECT_SAMPLE
        pos = self._select_samples[sample_index]
        remaining = rank - (sample_index * SELECT_SAMPLE + 1)
        if remaining == 0:
            return pos
        word_index = pos >> 6
        # Mask off the sampled one and everything before it in its word.
        word = self._words[word_index] & ~((1 << ((pos & 63) + 1)) - 1)
        while True:
            while word:
                low = word & -word
                word ^= low
                remaining -= 1
                if remaining == 0:
                    return (word_index << 6) + low.bit_length() - 1
            word_index += 1
            word = self._words[word_index]

    def memory_bits(self) -> int:
        """Approximate storage: payload + rank directory + select samples.

        Directory entries are priced at the width actually needed to
        address this vector — a cumulative count is at most ``ones`` and a
        select sample is a position below ``length``, so both fit in
        ``ceil(log2(length + 1))`` bits.  (They were previously charged a
        flat 32 bits each, which overstated small vectors and would
        understate vectors beyond 4 Gbit.)
        """
        entry_bits = max(1, self._length.bit_length())
        return (
            len(self._words) * _WORD_BITS
            + len(self._rank_dir) * entry_bits
            + len(self._select_samples) * entry_bits
        )
