"""Rosetta range filter — the paper's non-vulnerable mitigation (section 11).

A Rosetta instance over keys of at most ``L`` bits keeps ``L`` Bloom
filters; inserting a key inserts its ``i``-bit prefix into the ``i``-th
filter for every ``i``.  Point queries probe only ``B_L`` — a plain Bloom
membership test whose false positives are hash collisions sharing *no
prefix structure* with stored keys.  That breaks characteristic C1 of the
paper's vulnerable-filter class, which is exactly why section 11 offers
Rosetta as a mitigation (at the cost of requiring fixed-width keys and more
memory).

Range queries decompose ``[low, high]`` into dyadic intervals and resolve
every positive probe down to the bottom level ("full doubting"), the
highest-accuracy mode of the Rosetta paper.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.common.errors import ConfigError
from repro.common.keys import key_to_int
from repro.filters.base import FilterBuilder, RangeFilter
from repro.filters.bloom import BloomFilter, optimal_num_probes


class RosettaFilter(RangeFilter):
    """L-level Bloom-filter stack over bit prefixes of fixed-width keys."""

    name = "rosetta"

    def __init__(self, key_bytes: int, expected_entries: int,
                 bits_per_key_per_level: float = 2.0) -> None:
        super().__init__()
        if key_bytes <= 0:
            raise ConfigError(f"key width must be positive, got {key_bytes}")
        if bits_per_key_per_level <= 0:
            raise ConfigError("bits per key per level must be positive")
        self.key_bytes = key_bytes
        self.key_bits = 8 * key_bytes
        num_bits = int(expected_entries * bits_per_key_per_level) or 64
        probes = optimal_num_probes(bits_per_key_per_level)
        self._levels: List[BloomFilter] = [
            BloomFilter(num_bits, probes) for _ in range(self.key_bits)
        ]
        self.num_keys = 0

    def add(self, key: bytes) -> None:
        """Insert a key: every bit-prefix goes into its level's filter."""
        value = self._check_width(key)
        for level in range(1, self.key_bits + 1):
            prefix = value >> (self.key_bits - level)
            self._levels[level - 1].add(self._encode(level, prefix))
        self.num_keys += 1

    def _may_contain(self, key: bytes) -> bool:
        # Point queries consult only the bottom level: no prefix
        # information leaks (the paper's section 11 observation).
        value = self._check_width(key)
        return self._levels[-1].may_contain(self._encode(self.key_bits, value))

    def _may_contain_many(self, keys: Sequence[bytes]) -> List[bool]:
        """Batch the bottom-level Bloom probes.

        A wrong-width key falls back to the scalar loop so the
        :class:`ConfigError` fires at the same key, after the same
        earlier probes, as it would scalar.
        """
        try:
            encoded = [self._encode(self.key_bits, self._check_width(key))
                       for key in keys]
        except ConfigError:
            return super()._may_contain_many(keys)
        return self._levels[-1].may_contain_many(encoded)

    def _may_contain_range(self, low: bytes, high: bytes) -> bool:
        lo = self._check_width(low)
        hi = self._check_width(high)
        if lo > hi:
            return False
        return self._probe(1, 0, lo, hi) or self._probe(1, 1, lo, hi)

    def _probe(self, level: int, prefix: int, lo: int, hi: int) -> bool:
        """Resolve the dyadic interval of ``prefix`` at ``level`` against
        ``[lo, hi]``, doubting positives down to the bottom level."""
        shift = self.key_bits - level
        first = prefix << shift
        last = first | ((1 << shift) - 1)
        if last < lo or first > hi:
            return False
        if not self._levels[level - 1].may_contain(self._encode(level, prefix)):
            return False
        if level == self.key_bits:
            return True
        return (
            self._probe(level + 1, prefix << 1, lo, hi)
            or self._probe(level + 1, (prefix << 1) | 1, lo, hi)
        )

    def memory_bits(self) -> int:
        """Total size across all levels — the mitigation's memory cost."""
        return sum(level.memory_bits() for level in self._levels)

    @property
    def levels(self) -> List[BloomFilter]:
        """Per-level Bloom filters (serialization support)."""
        return self._levels

    def restore_levels(self, levels: List[BloomFilter]) -> None:
        """Replace the level filters (filter-block deserialization)."""
        if len(levels) != self.key_bits:
            raise ConfigError("level count must equal the key bit width")
        self._levels = levels

    @staticmethod
    def _encode(level: int, prefix: int) -> bytes:
        return level.to_bytes(2, "big") + prefix.to_bytes(
            (max(1, level) + 7) // 8, "big"
        )

    def _check_width(self, key: bytes) -> int:
        if len(key) != self.key_bytes:
            raise ConfigError(
                f"Rosetta requires fixed {self.key_bytes}-byte keys, got "
                f"{len(key)} bytes (variable-length keys are unsupported, "
                f"as the paper's section 11 discusses)"
            )
        return key_to_int(key)


class RosettaFilterBuilder(FilterBuilder):
    """Builds one Rosetta per SSTable for fixed-width key workloads."""

    def __init__(self, key_bytes: int, bits_per_key_per_level: float = 2.0) -> None:
        if key_bytes <= 0:
            raise ConfigError(f"key width must be positive, got {key_bytes}")
        self.key_bytes = key_bytes
        self.bits_per_key_per_level = bits_per_key_per_level

    @property
    def name(self) -> str:
        return f"rosetta({self.key_bytes}B keys)"

    def build(self, sorted_keys: Sequence[bytes]) -> RosettaFilter:
        filt = RosettaFilter(self.key_bytes, len(sorted_keys),
                             self.bits_per_key_per_level)
        for key in sorted_keys:
            filt.add(key)
        return filt
