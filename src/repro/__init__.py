"""Reproduction of "Prefix Siphoning: Exploiting LSM-Tree Range Filters For
Information Disclosure" (Kaufman, Hershcovitch, Morrison — USENIX Security
2023).

Public API tour:

* :mod:`repro.core` — the attack framework (FindFPK/IdPrefix strategies,
  timing and idealized oracles, the three-step template, brute force).
* :mod:`repro.lsm` — the LSM-tree key-value store substrate.
* :mod:`repro.filters` — Bloom, prefix Bloom, SuRF (Base/Hash/Real, dict
  and LOUDS backends), Rosetta.
* :mod:`repro.storage` — simulated clock, NVMe device, page cache,
  background load (the timing-side-channel substrate; see DESIGN.md).
* :mod:`repro.system` — the ACL-checking service of the threat model.
* :mod:`repro.workloads` — key generators and one-call environments.
* :mod:`repro.analysis` — section-8 closed forms and distribution tools.
* :mod:`repro.bench` — one experiment module per paper table/figure.

Quickstart::

    from repro.workloads import DatasetConfig, build_environment, ATTACKER_USER
    from repro.filters import SuRFBuilder
    from repro.filters.surf import SuffixScheme, SurfVariant
    from repro.core import (IdealizedOracle, SurfAttackStrategy,
                            AttackConfig, PrefixSiphoningAttack)

    env = build_environment(DatasetConfig(
        num_keys=20_000, key_width=5,
        filter_builder=SuRFBuilder(variant="real")))
    oracle = IdealizedOracle(env.service, ATTACKER_USER)
    strategy = SurfAttackStrategy(
        key_width=5, filter_scheme=SuffixScheme(SurfVariant.REAL, 8))
    attack = PrefixSiphoningAttack(
        oracle, strategy, AttackConfig(key_width=5, num_candidates=30_000))
    print(attack.run().num_extracted, "keys disclosed")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
